"""Ablation — backoff policy swap on one flooding substrate, and the
Gradient Routing comparison (Section 4.4).

Part 1 isolates the paper's core idea: hold the entire flooding machinery
fixed and swap only the backoff policy (random ↔ signal strength).  The
metric prioritization alone must shorten routes.

Part 2 reproduces the similar-work argument: Gradient Routing's
"every closer node forwards" rule costs far more data transmissions than
Routeless Routing's single-winner elections, on identical scenarios.
"""

import pytest

from benchmarks.conftest import run_once
from repro.core.backoff import RandomBackoff, SignalStrengthBackoff
from repro.experiments.common import (
    ScenarioConfig,
    attach_cbr,
    build_protocol_network,
    pick_flows,
)
from repro.net.flooding import FloodingConfig
from repro.sim.rng import RandomStreams

SEEDS = (1, 2, 3)


def flooding_run(policy_name: str, seed: int):
    scenario = ScenarioConfig(n_nodes=60, width_m=775, height_m=775,
                              range_m=250, seed=seed)
    if policy_name == "random":
        policy = RandomBackoff(max_delay=0.05)
    else:
        policy = SignalStrengthBackoff(
            lam=0.05, rx_threshold_dbm=scenario.radio_config().rx_threshold_dbm)
    config = FloodingConfig(policy=policy, suppress_on_duplicate=True)
    net = build_protocol_network("counter1", scenario, protocol_config=config)
    flows = pick_flows(60, 10, RandomStreams(seed + 5).stream("ab"),
                       distinct_endpoints=False)
    attach_cbr(net, flows, interval_s=1.0, stop_s=10.0)
    net.run(until=12.0)
    return net.summary()


def test_policy_swap_shortens_routes(benchmark, report):
    def sweep():
        random_hops = sum(flooding_run("random", s).avg_hops for s in SEEDS) / len(SEEDS)
        ss_hops = sum(flooding_run("signal", s).avg_hops for s in SEEDS) / len(SEEDS)
        return random_hops, ss_hops

    random_hops, ss_hops = run_once(benchmark, sweep)
    report("ablation_backoff_policy", "\n".join([
        "=== Ablation: backoff policy swap on an identical flooding substrate ===",
        f"random backoff:          {random_hops:.2f} avg hops",
        f"signal-strength backoff: {ss_hops:.2f} avg hops",
    ]))
    assert ss_hops < random_hops


def routing_run(protocol: str, seed: int):
    scenario = ScenarioConfig(n_nodes=80, width_m=800, height_m=800,
                              range_m=250, seed=seed)
    net = build_protocol_network(protocol, scenario)
    flows = pick_flows(80, 4, RandomStreams(seed + 50).stream("g"),
                       bidirectional=True)
    attach_cbr(net, flows, interval_s=1.0, stop_s=12.0)
    net.run(until=15.0)
    return net


def test_gradient_routing_floods_more(benchmark, report):
    def sweep():
        counts = {}
        for protocol in ("gradient", "routeless"):
            data_tx, delivery = 0, 0.0
            for seed in SEEDS:
                net = routing_run(protocol, seed)
                data_tx += net.channel.tx_count_by_kind["data"]
                delivery += net.summary().delivery_ratio
            counts[protocol] = (data_tx / len(SEEDS), delivery / len(SEEDS))
        return counts

    counts = run_once(benchmark, sweep)
    report("ablation_gradient", "\n".join([
        "=== Similar work: Gradient Routing vs Routeless Routing ===",
        f"{'protocol':>10} {'data_tx':>9} {'delivery':>9}",
        f"{'gradient':>10} {counts['gradient'][0]:>9.0f} {counts['gradient'][1]:>9.3f}",
        f"{'routeless':>10} {counts['routeless'][0]:>9.0f} {counts['routeless'][1]:>9.3f}",
    ]))
    # Section 4.4: redundant forwarding makes Gradient Routing more
    # expensive in transmissions; both deliver well.
    assert counts["gradient"][0] > counts["routeless"][0]
    assert counts["gradient"][1] > 0.9 and counts["routeless"][1] > 0.9
