"""Figure 3 — Routeless Routing vs AODV without failures.

Regenerates the four panels (delay, delivery ratio, MAC packets, average
hops against the number of communicating pairs) and asserts the paper's
qualitative findings.
"""

import pytest

from benchmarks.conftest import run_once
from repro.experiments.fig3_rr_vs_aodv import Fig3Config, run_fig3
from repro.stats.series import format_table
from repro.viz.ascii_chart import line_chart

PANELS = (
    ("avg_delay_s", "End-to-End Delay (s)"),
    ("delivery_ratio", "Delivery Ratio"),
    ("mac_packets", "Number of MAC Packets"),
    ("avg_hops", "Average Hops"),
)


def test_fig3_sweep(benchmark, report):
    config = Fig3Config.active()
    results = run_once(benchmark, run_fig3, config)

    series = list(results.values())
    panels = []
    for metric, label in PANELS:
        panels.append(f"=== Figure 3: {label} vs Number of Communicating Pairs ===")
        panels.append(format_table(series, metric, x_label="pairs", precision=3))
        panels.append(line_chart(
            {s.label: s.curve(metric) for s in series},
            title=label, x_label="communicating pairs"))
    report("fig3_rr_vs_aodv", "\n\n".join(panels))

    aodv, rr = results["aodv"], results["routeless"]
    xs = aodv.xs
    mean = lambda series, metric: sum(series.metric(x, metric).mean for x in xs) / len(xs)

    # Delivery ratio ≈ 1.0 for both ("roughly the same delivery ratio").
    assert mean(aodv, "delivery_ratio") > 0.95
    assert mean(rr, "delivery_ratio") > 0.95

    # Routeless Routing pays latency per hop for its elections.
    assert mean(rr, "avg_delay_s") > mean(aodv, "avg_delay_s")

    # Routeless Routing keeps finding the shortest paths; AODV is stuck with
    # what discovery established.
    assert mean(rr, "avg_hops") <= mean(aodv, "avg_hops") + 0.1

    # MAC packet counts grow with offered load for both protocols.
    assert aodv.metric(xs[-1], "mac_packets").mean > aodv.metric(xs[0], "mac_packets").mean
    assert rr.metric(xs[-1], "mac_packets").mean > rr.metric(xs[0], "mac_packets").mean
