"""Figure 4 — Routeless Routing vs AODV under transceiver failures.

Regenerates the four panels against the node failure percentage and asserts
the paper's central resilience result: AODV's delay and MAC packet count
climb with the failure rate while Routeless Routing's stay flat, at
comparable delivery.
"""

import pytest

from benchmarks.conftest import run_once
from repro.experiments.fig4_failures import Fig4Config, run_fig4
from repro.stats.series import format_table
from repro.viz.ascii_chart import line_chart

PANELS = (
    ("avg_delay_s", "End-to-End Delay (s)"),
    ("delivery_ratio", "Delivery Ratio"),
    ("mac_packets", "Number of MAC Packets"),
    ("avg_hops", "Average Hops"),
)


def test_fig4_sweep(benchmark, report):
    config = Fig4Config.active()
    results = run_once(benchmark, run_fig4, config)

    series = list(results.values())
    panels = []
    for metric, label in PANELS:
        panels.append(f"=== Figure 4: {label} vs Node Failure Percentage ===")
        panels.append(format_table(series, metric, x_label="failure", precision=3))
        panels.append(line_chart(
            {s.label: s.curve(metric) for s in series},
            title=label, x_label="node failure fraction"))
    report("fig4_failures", "\n\n".join(panels))

    aodv, rr = results["aodv"], results["routeless"]
    lo, hi = min(aodv.xs), max(aodv.xs)

    # AODV: repair machinery cost grows with the failure rate.
    assert aodv.metric(hi, "mac_packets").mean > \
        1.4 * aodv.metric(lo, "mac_packets").mean
    assert aodv.metric(hi, "avg_delay_s").mean > \
        aodv.metric(lo, "avg_delay_s").mean

    # Routeless Routing: "completely resilient to node failures".
    assert rr.metric(hi, "mac_packets").mean < \
        1.3 * rr.metric(lo, "mac_packets").mean
    assert rr.metric(hi, "avg_delay_s").mean < \
        2.0 * max(rr.metric(lo, "avg_delay_s").mean, 1e-3)
    assert rr.metric(hi, "delivery_ratio").mean > 0.95

    # Under failures AODV burns more MAC packets than Routeless Routing.
    assert aodv.metric(hi, "mac_packets").mean > rr.metric(hi, "mac_packets").mean
