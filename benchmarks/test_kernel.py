"""Microbenchmarks for the simulation substrate's hot paths.

These are genuine pytest-benchmark measurements (many rounds): the event
loop, timer cancellation, channel fan-out, backoff policy draws and table
updates are the operations the figure sweeps execute millions of times.
"""

import numpy as np
import pytest

from repro.core.backoff import BackoffInput, HopCountBackoff, SignalStrengthBackoff
from repro.mac.frame import Frame
from repro.net.routeless import ActiveNodeTable
from repro.phy.propagation import FreeSpace
from repro.sim.engine import Simulator


def test_event_loop_throughput(benchmark):
    """Schedule-and-fire 10k chained events."""

    def run():
        sim = Simulator()

        def chain(n):
            if n:
                sim.schedule(0.001, chain, n - 1)

        sim.schedule(0.0, chain, 10_000)
        sim.run()
        return sim.events_processed

    assert benchmark(run) == 10_001


def test_timer_cancellation_storm(benchmark):
    """Arm 10k timers, cancel 90% — the election workload's signature."""

    def run():
        sim = Simulator()
        fired = []
        handles = [sim.schedule(1.0 + i * 1e-6, fired.append, i)
                   for i in range(10_000)]
        for i, handle in enumerate(handles):
            if i % 10:
                handle.cancel()
        sim.run()
        return len(fired)

    assert benchmark(run) == 1_000


def test_channel_fanout(benchmark):
    """One broadcast delivered to ~80 in-range receivers, repeated."""
    from repro.sim.components import SimContext
    from repro.sim.rng import RandomStreams
    from repro.phy.channel import Channel
    from repro.phy.radio import RadioConfig, Transceiver
    from repro.phy.propagation import range_to_threshold_dbm

    ctx = SimContext()
    rng = np.random.default_rng(0)
    positions = rng.uniform(0, 300, size=(80, 2))
    model = FreeSpace()
    threshold = range_to_threshold_dbm(model, 15.0, 250.0)
    config = RadioConfig(tx_power_dbm=15.0, rx_threshold_dbm=threshold)
    channel = Channel(ctx, positions, model, 15.0, config.cs_threshold_dbm)
    radios = [Transceiver(ctx, i, channel, config) for i in range(80)]
    payload = Frame(src=0, dst=None, seq=0, payload=None, size_bytes=100)

    def run():
        radios[0].transmit(payload, 0.001)
        ctx.simulator.run()

    benchmark(run)
    assert channel.tx_count >= 1


def test_link_budget_precompute(benchmark):
    """The vectorized N×N link budget for a 500-node (paper-scale) network."""
    rng = np.random.default_rng(0)
    positions = rng.uniform(0, 2000, size=(500, 2))
    model = FreeSpace()

    def run():
        diff = positions[:, None, :] - positions[None, :, :]
        dist = np.sqrt((diff**2).sum(axis=-1))
        return model.rx_power_dbm(15.0, dist)

    out = benchmark(run)
    assert out.shape == (500, 500)


def test_hopcount_backoff_draws(benchmark):
    policy = HopCountBackoff(lam=0.05)
    rng = np.random.default_rng(0)
    observed = BackoffInput(rng=rng, table_hops=3, expected_hops=4)

    def run():
        return [policy.delay(observed) for _ in range(1_000)]

    delays = benchmark(run)
    assert len(delays) == 1_000


def test_signal_strength_backoff_draws(benchmark):
    policy = SignalStrengthBackoff(lam=0.05, rx_threshold_dbm=-64.0)
    rng = np.random.default_rng(0)
    observed = BackoffInput(rng=rng, rx_power_dbm=-50.0)

    def run():
        return [policy.delay(observed) for _ in range(1_000)]

    assert len(benchmark(run)) == 1_000


def test_active_node_table_updates(benchmark):
    def run():
        table = ActiveNodeTable()
        for i in range(10_000):
            table.update(i % 64, (i * 7) % 12, now=i * 0.001)
        return len(table)

    assert benchmark(run) == 64
