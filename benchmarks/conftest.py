"""Shared benchmark plumbing.

Each figure bench runs its (reduced-scale) experiment exactly once under
pytest-benchmark, prints the same rows/series the paper plots, writes them to
``benchmarks/results/``, and asserts the qualitative shape.  Set
``REPRO_PAPER_SCALE=1`` to run every experiment at the paper's full size.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def report():
    """Returns ``report(name, text)``: prints and persists a result panel."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _report(name: str, text: str) -> None:
        print(f"\n{text}\n")
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return _report


def run_once(benchmark, fn, *args, **kwargs):
    """Run a whole-experiment callable exactly once under the benchmark
    fixture (simulations are far too heavy for repeated timing rounds, and
    their wall time is an output of interest, not a noise source)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
