"""Ablation — the λ tradeoff in Routeless Routing's backoff equation.

Section 4.1: "If λ is too small, the difference between backoff delays
calculated by different nodes will be too small to avoid collisions.  A large
λ would increase the end-to-end delay of packet delivery."

This bench sweeps λ over an order of magnitude on a fixed scenario and
reports delay and redundant transmissions, asserting the direction of the
delay side of the tradeoff.
"""

import pytest

from benchmarks.conftest import run_once
from repro.experiments.common import (
    ScenarioConfig,
    attach_cbr,
    build_protocol_network,
    pick_flows,
)
from repro.net.routeless import RoutelessConfig
from repro.sim.rng import RandomStreams

LAMBDAS = (0.01, 0.03, 0.05, 0.1, 0.2)
SEEDS = (1, 2)


def run_lambda(lam: float, seed: int):
    config = RoutelessConfig(lam=lam, arbiter_timeout_s=max(0.25, lam * 4))
    scenario = ScenarioConfig(n_nodes=100, width_m=900, height_m=900,
                              range_m=250, seed=seed)
    net = build_protocol_network("routeless", scenario, protocol_config=config)
    flows = pick_flows(100, 4, RandomStreams(seed + 31).stream("lam"),
                       bidirectional=True)
    attach_cbr(net, flows, interval_s=1.0, stop_s=15.0)
    net.run(until=18.0)
    summary = net.summary()
    relays = sum(p.relays for p in net.protocols)
    needed = sum(max(d.hops - 1, 0) for d in net.metrics.deliveries)
    return summary, (relays / needed if needed else 0.0)


def test_lambda_tradeoff(benchmark, report):
    def sweep():
        rows = {}
        for lam in LAMBDAS:
            delays, ratios, redundancy = [], [], []
            for seed in SEEDS:
                summary, extra = run_lambda(lam, seed)
                delays.append(summary.avg_delay_s)
                ratios.append(summary.delivery_ratio)
                redundancy.append(extra)
            rows[lam] = (
                sum(delays) / len(delays),
                sum(ratios) / len(ratios),
                sum(redundancy) / len(redundancy),
            )
        return rows

    rows = run_once(benchmark, sweep)

    lines = ["=== Ablation: λ sweep (Routeless Routing) ===",
             f"{'lambda':>8} {'delay_s':>10} {'delivery':>10} {'relay_redund':>13}"]
    for lam, (delay, ratio, redundancy) in rows.items():
        lines.append(f"{lam:>8g} {delay:>10.4f} {ratio:>10.3f} {redundancy:>13.2f}")
    report("ablation_lambda", "\n".join(lines))

    # Large λ costs delay (the paper's second failure mode)...
    assert rows[LAMBDAS[-1]][0] > rows[LAMBDAS[0]][0]
    # ...while delivery stays serviceable across the sweep.
    assert all(ratio > 0.9 for _, ratio, _ in rows.values())
    # Tiny λ produces more redundant relays per delivered hop than a
    # comfortable λ (the collision side of the tradeoff).
    assert rows[0.01][2] > rows[0.1][2]
