"""Tests for the CSMA/CA MAC: broadcast, unicast/ACK/retry, deferral,
cancellation, queue disciplines."""

import pytest

from repro.mac.csma import MacConfig
from repro.net.packet import Packet, PacketKind
from tests.conftest import line_positions, make_mac_stack


def data(origin=0, seq=0, target=None, size=100):
    return Packet(kind=PacketKind.DATA, origin=origin, seq=seq, target=target,
                  size_bytes=size)


def collect(mac):
    got = []
    mac.to_net.connect(lambda p, rx: got.append((p, rx)))
    return got


class TestBroadcast:
    def test_broadcast_reaches_all_in_range(self, ctx):
        channel, radios, macs = make_mac_stack(ctx, line_positions(3, spacing=100.0))
        got1, got2 = collect(macs[1]), collect(macs[2])
        macs[0].send(data())
        ctx.simulator.run()
        assert len(got1) == 1 and len(got2) == 1

    def test_rx_info_carries_power_and_src(self, ctx):
        channel, radios, macs = make_mac_stack(ctx, line_positions(2, spacing=150.0))
        got = collect(macs[1])
        macs[0].send(data())
        ctx.simulator.run()
        _, rx = got[0]
        assert rx.src == 0
        assert rx.power_dbm > -100
        assert not rx.overheard

    def test_broadcasts_have_no_mac_ack(self, ctx):
        channel, radios, macs = make_mac_stack(ctx, line_positions(2, spacing=100.0))
        macs[0].send(data())
        ctx.simulator.run()
        assert channel.tx_count_by_kind["mac_ack"] == 0

    def test_sent_notification(self, ctx):
        channel, radios, macs = make_mac_stack(ctx, line_positions(2, spacing=100.0))
        sent = []
        macs[0].sent.connect(lambda p, dst: sent.append((p, dst)))
        packet = data()
        macs[0].send(packet)
        ctx.simulator.run()
        assert sent == [(packet, None)]

    def test_queue_serializes_transmissions(self, ctx):
        channel, radios, macs = make_mac_stack(ctx, line_positions(2, spacing=100.0))
        got = collect(macs[1])
        for i in range(5):
            macs[0].send(data(seq=i))
        ctx.simulator.run()
        assert [p.seq for p, _ in got] == [0, 1, 2, 3, 4]

    def test_queue_overflow_drops(self, ctx):
        config = MacConfig(queue_capacity=2)
        channel, radios, macs = make_mac_stack(ctx, line_positions(2), config)
        results = [macs[0].send(data(seq=i)) for i in range(5)]
        # one in service + two queued fit; the rest are refused
        assert results.count(False) >= 2


class TestUnicast:
    def test_unicast_delivered_and_acked(self, ctx):
        channel, radios, macs = make_mac_stack(ctx, line_positions(2, spacing=100.0))
        got = collect(macs[1])
        sent = []
        macs[0].sent.connect(lambda p, dst: sent.append(dst))
        macs[0].send(data(target=1), dst=1)
        ctx.simulator.run()
        assert len(got) == 1
        assert sent == [1]  # completion implies the ACK came back
        assert channel.tx_count_by_kind["mac_ack"] == 1

    def test_unicast_to_dead_node_reports_failure(self, ctx):
        channel, radios, macs = make_mac_stack(ctx, line_positions(2, spacing=100.0))
        failures = []
        macs[0].send_failed.connect(lambda p, dst: failures.append(dst))
        radios[1].set_power(False)
        macs[0].send(data(target=1), dst=1)
        ctx.simulator.run()
        assert failures == [1]
        assert macs[0].ack_timeouts == macs[0].config.retry_limit + 1

    def test_retries_until_ack(self, ctx):
        channel, radios, macs = make_mac_stack(ctx, line_positions(2, spacing=100.0))
        got = collect(macs[1])
        # Dead for the first attempts, then back up: the retransmission gets
        # through and no failure is reported.
        failures = []
        macs[0].send_failed.connect(lambda p, dst: failures.append(dst))
        radios[1].set_power(False)
        ctx.simulator.schedule(0.004, radios[1].set_power, True)
        macs[0].send(data(target=1), dst=1)
        ctx.simulator.run()
        assert len(got) == 1
        assert failures == []
        assert macs[0].ack_timeouts >= 1

    def test_unicast_for_other_node_ignored(self, ctx):
        channel, radios, macs = make_mac_stack(ctx, line_positions(3, spacing=100.0))
        got2 = collect(macs[2])
        macs[0].send(data(target=1), dst=1)
        ctx.simulator.run()
        assert got2 == []

    def test_promiscuous_mode_overhears(self, ctx):
        config = MacConfig(promiscuous=True)
        channel, radios, macs = make_mac_stack(ctx, line_positions(3, spacing=100.0), config)
        got2 = collect(macs[2])
        macs[0].send(data(target=1), dst=1)
        ctx.simulator.run()
        assert len(got2) == 1
        assert got2[0][1].overheard


class TestCarrierDeferral:
    def test_concurrent_senders_avoid_collision(self, ctx):
        # Nodes 0 and 2 both in carrier range; both send to node 1 at once.
        channel, radios, macs = make_mac_stack(ctx, line_positions(3, spacing=100.0))
        got = collect(macs[1])
        macs[0].send(data(origin=0))
        macs[2].send(data(origin=2))
        ctx.simulator.run()
        # CSMA (carrier sense + random backoff) should usually serialize
        # them; with these seeds both get through.
        assert sorted(p.origin for p, _ in got) == [0, 2]

    def test_many_contenders_all_eventually_send(self, ctx):
        channel, radios, macs = make_mac_stack(ctx, line_positions(5, spacing=50.0))
        got = collect(macs[4])
        for i in range(4):
            macs[i].send(data(origin=i))
        ctx.simulator.run()
        assert len(got) >= 3  # collisions possible but rare


class TestCancelSend:
    def test_cancel_queued_packet(self, ctx):
        channel, radios, macs = make_mac_stack(ctx, line_positions(2, spacing=100.0))
        got = collect(macs[1])
        first, second = data(seq=0), data(seq=1)
        macs[0].send(first)
        macs[0].send(second)  # still queued while first is in service
        assert macs[0].cancel_send(second)
        ctx.simulator.run()
        assert [p.seq for p, _ in got] == [0]

    def test_cancel_in_backoff_window(self, ctx):
        channel, radios, macs = make_mac_stack(ctx, line_positions(2, spacing=100.0))
        got = collect(macs[1])
        packet = data()
        macs[0].send(packet)
        # Cancel before the CSMA backoff elapses (difs alone is 50 µs).
        assert macs[0].cancel_send(packet)
        ctx.simulator.run()
        assert got == []
        assert channel.tx_count == 0

    def test_cancel_after_transmission_fails(self, ctx):
        channel, radios, macs = make_mac_stack(ctx, line_positions(2, spacing=100.0))
        packet = data()
        macs[0].send(packet)
        ctx.simulator.run()
        assert not macs[0].cancel_send(packet)

    def test_cancel_unknown_packet_false(self, ctx):
        channel, radios, macs = make_mac_stack(ctx, line_positions(2))
        assert not macs[0].cancel_send(data())

    def test_cancel_frees_queue_for_next(self, ctx):
        channel, radios, macs = make_mac_stack(ctx, line_positions(2, spacing=100.0))
        got = collect(macs[1])
        first, second = data(seq=0), data(seq=1)
        macs[0].send(first)
        macs[0].send(second)
        macs[0].cancel_send(first)  # cancels the in-service job
        ctx.simulator.run()
        assert [p.seq for p, _ in got] == [1]


class TestPriorityQueueDiscipline:
    def test_priority_mac_reorders(self, ctx):
        config = MacConfig(priority_queue=True)
        channel, radios, macs = make_mac_stack(ctx, line_positions(2, spacing=100.0), config)
        got = collect(macs[1])
        macs[0].send(data(seq=0), priority=0.9)   # in service immediately
        macs[0].send(data(seq=1), priority=0.8)
        macs[0].send(data(seq=2), priority=0.1)   # should overtake seq=1
        ctx.simulator.run()
        assert [p.seq for p, _ in got] == [0, 2, 1]

    def test_fifo_mac_preserves_order(self, ctx):
        channel, radios, macs = make_mac_stack(ctx, line_positions(2, spacing=100.0))
        got = collect(macs[1])
        macs[0].send(data(seq=0), priority=0.9)
        macs[0].send(data(seq=1), priority=0.8)
        macs[0].send(data(seq=2), priority=0.1)
        ctx.simulator.run()
        assert [p.seq for p, _ in got] == [0, 1, 2]


class TestDeadRadio:
    def test_send_on_dead_radio_drops_quietly(self, ctx):
        channel, radios, macs = make_mac_stack(ctx, line_positions(2, spacing=100.0))
        failures = []
        macs[0].send_failed.connect(lambda p, d: failures.append(p))
        radios[0].set_power(False)
        macs[0].send(data())
        ctx.simulator.run()
        assert channel.tx_count == 0
        assert failures == []  # the node is dead; nobody to notify

    def test_mac_recovers_after_power_cycle(self, ctx):
        channel, radios, macs = make_mac_stack(ctx, line_positions(2, spacing=100.0))
        got = collect(macs[1])
        radios[0].set_power(False)
        macs[0].send(data(seq=0))
        ctx.simulator.run()
        radios[0].set_power(True)
        macs[0].send(data(seq=1))
        ctx.simulator.run()
        assert [p.seq for p, _ in got] == [1]
