"""Tests for RTS/CTS virtual carrier sensing."""

import pytest

from repro.mac.csma import MacConfig
from repro.net.packet import Packet, PacketKind
from tests.conftest import line_positions, make_mac_stack


def data(origin=0, seq=0, target=None, size=400):
    return Packet(kind=PacketKind.DATA, origin=origin, seq=seq, target=target,
                  size_bytes=size)


def collect(mac):
    got = []
    mac.to_net.connect(lambda p, rx: got.append((p, rx)))
    return got


RTS_CONFIG = MacConfig(rts_threshold_bytes=200)


class TestHandshake:
    def test_full_exchange_on_large_unicast(self, ctx):
        channel, radios, macs = make_mac_stack(
            ctx, line_positions(2, spacing=100.0), RTS_CONFIG)
        got = collect(macs[1])
        sent = []
        macs[0].sent.connect(lambda p, d: sent.append(d))
        macs[0].send(data(target=1), dst=1)
        ctx.simulator.run()
        assert len(got) == 1
        assert sent == [1]
        kinds = channel.tx_count_by_kind
        assert kinds["mac_rts"] == 1
        assert kinds["mac_cts"] == 1
        assert kinds["mac_ack"] == 1
        assert kinds["data"] == 1

    def test_small_unicast_skips_rts(self, ctx):
        channel, radios, macs = make_mac_stack(
            ctx, line_positions(2, spacing=100.0), RTS_CONFIG)
        collect(macs[1])
        macs[0].send(data(target=1, size=64), dst=1)
        ctx.simulator.run()
        assert channel.tx_count_by_kind.get("mac_rts", 0) == 0

    def test_broadcast_never_uses_rts(self, ctx):
        channel, radios, macs = make_mac_stack(
            ctx, line_positions(2, spacing=100.0), RTS_CONFIG)
        collect(macs[1])
        macs[0].send(data(size=1000))
        ctx.simulator.run()
        assert channel.tx_count_by_kind.get("mac_rts", 0) == 0

    def test_disabled_by_default(self, ctx):
        channel, radios, macs = make_mac_stack(ctx, line_positions(2, spacing=100.0))
        collect(macs[1])
        macs[0].send(data(target=1, size=1000), dst=1)
        ctx.simulator.run()
        assert channel.tx_count_by_kind.get("mac_rts", 0) == 0

    def test_cts_timeout_retries_then_fails(self, ctx):
        channel, radios, macs = make_mac_stack(
            ctx, line_positions(2, spacing=100.0), RTS_CONFIG)
        failures = []
        macs[0].send_failed.connect(lambda p, d: failures.append(d))
        radios[1].set_power(False)
        macs[0].send(data(target=1), dst=1)
        ctx.simulator.run()
        assert failures == [1]
        assert macs[0].cts_timeouts == macs[0].config.retry_limit + 1


class TestNav:
    def test_third_party_defers_during_exchange(self, ctx):
        # 0 → 1 with RTS/CTS while node 2 (in range of both) wants to send:
        # node 2's NAV must hold it off until the exchange ends.
        channel, radios, macs = make_mac_stack(
            ctx, line_positions(3, spacing=100.0), RTS_CONFIG)
        got1 = collect(macs[1])
        macs[0].send(data(origin=0, target=1, size=1000), dst=1)
        # Let the RTS hit the air, then node 2 tries to broadcast.
        ctx.simulator.schedule(0.0006, macs[2].send, data(origin=2, seq=9))
        ctx.simulator.run()
        assert len(got1) == 2  # both the unicast and the broadcast arrived
        assert macs[2].nav_deferrals >= 1

    def test_nav_clears_and_traffic_resumes(self, ctx):
        channel, radios, macs = make_mac_stack(
            ctx, line_positions(3, spacing=100.0), RTS_CONFIG)
        got = collect(macs[1])
        macs[0].send(data(origin=0, target=1), dst=1)
        ctx.simulator.schedule(0.0006, macs[2].send, data(origin=2, seq=9))
        ctx.simulator.run()
        assert not macs[2].nav_busy
        assert macs[2].busy is False  # everything drained

    def test_hidden_terminal_protected(self, ctx):
        # Line 0 — 1 — 2 with 200 m spacing: 0 and 2 cannot sense each other
        # (hidden terminals) but both can reach node 1.  With RTS/CTS, node
        # 1's CTS sets node 2's NAV so its own transmission waits.
        channel, radios, macs = make_mac_stack(
            ctx, line_positions(3, spacing=200.0), RTS_CONFIG)
        got = collect(macs[1])
        macs[0].send(data(origin=0, target=1, size=1200), dst=1)
        # Node 2 decides to transmit right after the CTS would be heard.
        ctx.simulator.schedule(0.0012, macs[2].send,
                               data(origin=2, seq=9, target=1), 1)
        ctx.simulator.run()
        origins = sorted(p.origin for p, _ in got)
        assert origins == [0, 2]  # both delivered, no collision loss
        assert macs[2].nav_deferrals >= 1


class TestInteractionWithCancel:
    def test_cancel_before_rts_fires(self, ctx):
        channel, radios, macs = make_mac_stack(
            ctx, line_positions(2, spacing=100.0), RTS_CONFIG)
        packet = data(target=1)
        macs[0].send(packet, dst=1)
        assert macs[0].cancel_send(packet)
        ctx.simulator.run()
        assert channel.tx_count == 0
