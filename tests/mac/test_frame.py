"""Tests for MAC frames."""

from repro.mac.frame import MAC_ACK_SIZE, Frame
from repro.net.packet import Packet, PacketKind


def test_broadcast_flag():
    assert Frame(0, None, 0, None, 10).is_broadcast
    assert not Frame(0, 1, 0, None, 10).is_broadcast


def test_kind_from_payload():
    packet = Packet(kind=PacketKind.PATH_REPLY, origin=0, seq=0)
    assert Frame(0, None, 0, packet, 10).kind == "path_reply"


def test_kind_for_control_and_raw():
    assert Frame(0, 1, 0, None, MAC_ACK_SIZE, subtype="ack").kind == "mac_ack"
    assert Frame(0, 1, 0, None, 20, subtype="rts").kind == "mac_rts"
    assert Frame(0, 1, 0, None, 14, subtype="cts").kind == "mac_cts"
    assert Frame(0, None, 0, None, 10).kind == "raw"


def test_control_flags():
    ack = Frame(0, 1, 0, None, MAC_ACK_SIZE, subtype="ack")
    assert ack.is_ack and ack.is_control
    data = Frame(0, 1, 0, None, 100)
    assert not data.is_ack and not data.is_control


def test_str_is_compact():
    text = str(Frame(3, None, 7, None, 10))
    assert "3->*" in text and "#7" in text
