"""Tests for the net→MAC transmit queues."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mac.queue import FifoTxQueue, PriorityTxQueue, TxJob


def job(tag, priority=0.0):
    return TxJob(packet=tag, dst=None, size_bytes=64, priority=priority)


class TestFifo:
    def test_fifo_order(self):
        q = FifoTxQueue()
        for i in range(5):
            q.push(job(i))
        assert [q.pop().packet for _ in range(5)] == list(range(5))

    def test_empty_pop_returns_none(self):
        assert FifoTxQueue().pop() is None

    def test_capacity_drop_tail(self):
        q = FifoTxQueue(capacity=2)
        assert q.push(job(0)) and q.push(job(1))
        assert not q.push(job(2))
        assert q.dropped == 1
        assert len(q) == 2

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            FifoTxQueue(capacity=0)

    def test_cancel_removes_job(self):
        q = FifoTxQueue()
        packets = [object(), object()]
        q.push(job(packets[0]))
        q.push(job(packets[1]))
        assert q.cancel(packets[0])
        assert len(q) == 1
        assert q.pop().packet is packets[1]

    def test_cancel_missing_returns_false(self):
        q = FifoTxQueue()
        assert not q.cancel(object())

    def test_cancel_is_identity_based(self):
        q = FifoTxQueue()
        a, b = "pkt", "pkt2"
        q.push(job(a))
        assert not q.cancel(b)
        assert q.cancel(a)

    def test_bool_reflects_live_jobs(self):
        q = FifoTxQueue()
        p = object()
        q.push(job(p))
        assert q
        q.cancel(p)
        assert not q


class TestPriority:
    def test_lowest_priority_value_first(self):
        q = PriorityTxQueue()
        q.push(job("slow", priority=0.9))
        q.push(job("fast", priority=0.1))
        q.push(job("mid", priority=0.5))
        assert [q.pop().packet for _ in range(3)] == ["fast", "mid", "slow"]

    def test_ties_break_fifo(self):
        q = PriorityTxQueue()
        for i in range(5):
            q.push(job(i, priority=1.0))
        assert [q.pop().packet for _ in range(5)] == list(range(5))

    def test_capacity_drop_tail(self):
        q = PriorityTxQueue(capacity=1)
        assert q.push(job(0))
        assert not q.push(job(1, priority=-1.0))  # even urgent jobs drop when full
        assert q.dropped == 1

    def test_cancel_in_heap(self):
        q = PriorityTxQueue()
        p = object()
        q.push(job(p, priority=0.0))
        q.push(job("other", priority=1.0))
        assert q.cancel(p)
        assert q.pop().packet == "other"
        assert q.pop() is None

    @given(st.lists(st.floats(min_value=0, max_value=100, allow_nan=False), max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_pops_are_sorted_by_priority(self, priorities):
        q = PriorityTxQueue(capacity=100)
        for i, p in enumerate(priorities):
            q.push(job(i, priority=p))
        popped = []
        while True:
            j = q.pop()
            if j is None:
                break
            popped.append(j.priority)
        assert popped == sorted(popped)
        assert len(popped) == len(priorities)
