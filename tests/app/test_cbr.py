"""Tests for CBR traffic generation and sinks."""

import pytest

from repro.app.cbr import CbrConfig, CbrSource, PacketSink
from tests.conftest import line_network


class TestCbrSource:
    def test_generates_at_cadence(self):
        net = line_network("counter1", n=2, spacing=100.0)
        source = CbrSource(net.ctx, net.protocols[0], 1,
                           CbrConfig(interval_s=1.0, stop_s=5.5))
        net.run(until=10.0)
        assert source.generated == 6  # t = 0,1,2,3,4,5

    def test_start_offset(self):
        net = line_network("counter1", n=2, spacing=100.0)
        source = CbrSource(net.ctx, net.protocols[0], 1,
                           CbrConfig(interval_s=1.0, start_s=3.0, stop_s=5.5))
        net.run(until=10.0)
        assert source.generated == 3  # t = 3,4,5

    def test_jitter_delays_start_within_bound(self):
        net = line_network("counter1", n=2, spacing=100.0)
        source = CbrSource(net.ctx, net.protocols[0], 1,
                           CbrConfig(interval_s=1.0, start_jitter_s=0.5, stop_s=2.0))
        net.run(until=0.49999)
        # First packet lands somewhere in [0, 0.5); by 0.5 it must exist.
        net.run(until=0.5)
        assert source.generated == 1

    def test_invalid_interval(self):
        net = line_network("counter1", n=2)
        with pytest.raises(ValueError):
            CbrSource(net.ctx, net.protocols[0], 1, CbrConfig(interval_s=0.0))

    def test_custom_size(self):
        net = line_network("counter1", n=2, spacing=100.0)
        CbrSource(net.ctx, net.protocols[0], 1,
                  CbrConfig(interval_s=1.0, stop_s=0.5, size_bytes=64))
        net.run(until=2.0)
        delivered = net.metrics.deliveries
        assert len(delivered) == 1


class TestPacketSink:
    def test_counts_deliveries(self):
        net = line_network("counter1", n=3, spacing=100.0)
        sink = PacketSink(net.ctx, net.protocols[2])
        net.protocols[0].send_data(2)
        net.protocols[0].send_data(2)
        net.run(until=5.0)
        assert len(sink) == 2

    def test_deduplicates(self):
        net = line_network("counter1", n=3, spacing=100.0)
        sink = PacketSink(net.ctx, net.protocols[2])
        packet = net.protocols[0].send_data(2)
        net.run(until=5.0)
        # Replay the same delivery by hand: the sink must ignore it.
        net.protocols[2].deliver(packet, None)
        assert len(sink) == 1
