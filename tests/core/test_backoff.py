"""Tests for the backoff policies — the election's prioritization metric."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.backoff import (
    BackoffInput,
    FunctionBackoff,
    HopCountBackoff,
    RandomBackoff,
    SignalStrengthBackoff,
)


def observed(**kwargs):
    return BackoffInput(rng=np.random.default_rng(0), **kwargs)


class TestRandomBackoff:
    def test_within_bounds(self):
        policy = RandomBackoff(max_delay=0.1)
        rng = np.random.default_rng(1)
        for _ in range(200):
            delay = policy.delay(BackoffInput(rng=rng))
            assert 0.0 <= delay <= 0.1

    def test_invalid_max_rejected(self):
        with pytest.raises(ValueError):
            RandomBackoff(max_delay=0.0)

    def test_is_actually_random(self):
        policy = RandomBackoff()
        rng = np.random.default_rng(1)
        draws = {policy.delay(BackoffInput(rng=rng)) for _ in range(10)}
        assert len(draws) == 10


class TestSignalStrengthBackoff:
    POLICY = SignalStrengthBackoff(lam=0.05, rx_threshold_dbm=-64.0, jitter=0.0)

    def test_weak_signal_short_delay(self):
        # Weaker signal ⇒ presumed farther ⇒ forward sooner.
        weak = self.POLICY.delay(observed(rx_power_dbm=-64.0))
        strong = self.POLICY.delay(observed(rx_power_dbm=-30.0))
        assert weak < strong

    def test_edge_of_range_is_zero_delay(self):
        assert self.POLICY.delay(observed(rx_power_dbm=-64.0)) == pytest.approx(0.0)

    def test_below_threshold_clamps_to_zero(self):
        # (Cannot normally happen — undecodable — but must stay sane.)
        assert self.POLICY.delay(observed(rx_power_dbm=-80.0)) == pytest.approx(0.0)

    def test_very_strong_signal_approaches_lambda(self):
        delay = self.POLICY.delay(observed(rx_power_dbm=20.0))
        assert delay == pytest.approx(0.05, rel=0.01)

    def test_distance_fraction_free_space(self):
        # 6 dB weaker ≈ 2× distance under exponent 2.
        rho_edge = self.POLICY.distance_fraction(-64.0)
        rho_half = self.POLICY.distance_fraction(-64.0 + 6.02)
        assert rho_edge == pytest.approx(1.0)
        assert rho_half == pytest.approx(0.5, rel=0.01)

    def test_requires_rx_power(self):
        with pytest.raises(ValueError):
            self.POLICY.delay(observed())

    def test_jitter_adds_bounded_noise(self):
        policy = SignalStrengthBackoff(lam=0.05, rx_threshold_dbm=-64.0, jitter=0.01)
        rng = np.random.default_rng(3)
        delays = [policy.delay(BackoffInput(rng=rng, rx_power_dbm=-64.0))
                  for _ in range(100)]
        assert all(0.0 <= d <= 0.01 for d in delays)
        assert len(set(delays)) > 1

    @given(st.floats(min_value=-64.0, max_value=30.0),
           st.floats(min_value=-64.0, max_value=30.0))
    @settings(max_examples=100, deadline=None)
    def test_monotone_in_power(self, p1, p2):
        if p1 < p2:
            assert self.POLICY.delay(observed(rx_power_dbm=p1)) <= \
                self.POLICY.delay(observed(rx_power_dbm=p2))

    def test_validation(self):
        with pytest.raises(ValueError):
            SignalStrengthBackoff(lam=-1.0)
        with pytest.raises(ValueError):
            SignalStrengthBackoff(path_loss_exponent=0.0)


class TestHopCountBackoff:
    """The reconstructed Routeless Routing equation (DESIGN.md §2)."""

    POLICY = HopCountBackoff(lam=0.05, unknown_penalty=2)

    @given(st.integers(min_value=0, max_value=20), st.integers(min_value=0, max_value=20),
           st.integers(min_value=0, max_value=1000))
    @settings(max_examples=200, deadline=None)
    def test_paper_properties(self, table, expected, seed):
        """The two properties the prose asserts about the equation."""
        rng = np.random.default_rng(seed)
        delay = self.POLICY.delay(BackoffInput(rng=rng, table_hops=table,
                                               expected_hops=expected))
        if table > expected:
            # "assigns a backoff delay larger than λ to nodes with a larger
            # hop count than expected"
            assert delay >= self.POLICY.lam
        else:
            # at or better than expectation: bounded by λ, shrinking with gap
            assert delay <= self.POLICY.lam / (expected - table + 1)
        assert delay >= 0.0

    def test_smaller_table_hops_statistically_faster(self):
        rng = np.random.default_rng(0)
        near = [self.POLICY.delay(BackoffInput(rng=rng, table_hops=1, expected_hops=5))
                for _ in range(500)]
        far = [self.POLICY.delay(BackoffInput(rng=rng, table_hops=4, expected_hops=5))
               for _ in range(500)]
        assert np.mean(near) < np.mean(far)

    def test_unknown_table_uses_penalty(self):
        rng = np.random.default_rng(0)
        delay = self.POLICY.delay(BackoffInput(rng=rng, table_hops=None,
                                               expected_hops=3))
        # As if table were expected + penalty: in [λ·penalty, λ·(penalty+1)].
        assert self.POLICY.lam * 2 <= delay <= self.POLICY.lam * 3

    def test_requires_expected_hops(self):
        with pytest.raises(ValueError):
            self.POLICY.delay(observed(table_hops=1))

    def test_validation(self):
        with pytest.raises(ValueError):
            HopCountBackoff(lam=0.0)
        with pytest.raises(ValueError):
            HopCountBackoff(unknown_penalty=0)


class TestFunctionBackoff:
    def test_wraps_callable(self):
        policy = FunctionBackoff(fn=lambda obs: 0.123)
        assert policy.delay(observed()) == 0.123

    def test_rejects_negative(self):
        policy = FunctionBackoff(fn=lambda obs: -1.0)
        with pytest.raises(ValueError):
            policy.delay(observed())

    def test_rejects_nan(self):
        policy = FunctionBackoff(fn=lambda obs: float("nan"))
        with pytest.raises(ValueError):
            policy.delay(observed())
