"""Tests for the Span-style coordinator election."""

import numpy as np
import pytest

from repro.core.coordinators import CoordinatorConfig, CoordinatorRole, SpanCoordinator
from repro.topology.placement import adjacency
from tests.conftest import line_positions, make_mac_stack


def build_span(ctx, positions, config=None, energies=None):
    channel, radios, macs = make_mac_stack(ctx, positions)
    config = config if config is not None else CoordinatorConfig()
    agents = [
        SpanCoordinator(ctx, i, mac, config,
                        energy=(energies[i] if energies is not None else 1.0))
        for i, mac in enumerate(macs)
    ]
    return channel, agents


def coordinator_set(agents):
    return {a.node_id for a in agents if a.is_coordinator}


class TestBackboneFormation:
    def test_line_elects_interior_coordinators(self, ctx):
        # 0-1-2-3-4 at 200 m: each interior node bridges its two neighbors;
        # endpoints bridge nothing.  The backbone must include enough
        # interior nodes to connect every 2-hop pair.
        channel, agents = build_span(ctx, line_positions(5, spacing=200.0))
        ctx.simulator.run(until=10.0)
        coords = coordinator_set(agents)
        assert {1, 2, 3} <= coords
        assert 0 not in coords and 4 not in coords  # no pairs to bridge

    def test_clique_elects_nobody(self, ctx):
        # Everyone hears everyone: no pair needs bridging.
        channel, agents = build_span(ctx, line_positions(6, spacing=30.0))
        ctx.simulator.run(until=10.0)
        assert coordinator_set(agents) == set()

    def test_dense_random_field_elects_a_small_backbone(self, ctx):
        rng = np.random.default_rng(4)
        positions = rng.uniform(0, 600, size=(40, 2))
        channel, agents = build_span(ctx, positions)
        ctx.simulator.run(until=12.0)
        coords = coordinator_set(agents)
        assert 0 < len(coords) < 25  # a backbone, not the whole network

    def test_every_two_hop_pair_is_bridged(self, ctx):
        rng = np.random.default_rng(7)
        positions = rng.uniform(0, 500, size=(25, 2))
        channel, agents = build_span(ctx, positions)
        ctx.simulator.run(until=15.0)
        coords = coordinator_set(agents)
        adj = adjacency(positions, 250.0)
        n = len(positions)
        for v in range(n):
            neighbors = np.flatnonzero(adj[v])
            for i, a in enumerate(neighbors):
                for b in neighbors[i + 1:]:
                    if adj[a, b]:
                        continue  # direct link
                    if a in coords or b in coords:
                        continue
                    common = {int(c) for c in np.flatnonzero(adj[a] & adj[b])}
                    assert common & coords, \
                        f"pair ({a},{b}) around {v} left unbridged"


class TestEnergyRotation:
    def test_low_energy_nodes_avoid_duty_when_equivalent(self, ctx):
        # Symmetric diamond: nodes 1 and 2 both bridge 0-3 equally well, but
        # node 2 is nearly drained — node 1 must win the candidacy race.
        positions = np.array([
            [0.0, 0.0], [200.0, 80.0], [200.0, -80.0], [400.0, 0.0]])
        config = CoordinatorConfig(jitter=0.002)
        channel, agents = build_span(ctx, positions, config=config,
                                     energies=[1.0, 1.0, 0.05, 1.0])
        ctx.simulator.run(until=8.0)
        assert agents[1].is_coordinator
        assert not agents[2].is_coordinator

    def test_duty_drains_energy(self, ctx):
        channel, agents = build_span(ctx, line_positions(3, spacing=200.0))
        ctx.simulator.run(until=10.0)
        assert agents[1].is_coordinator
        assert agents[1].energy < 1.0
        assert agents[0].energy == 1.0


class TestWithdrawal:
    def test_redundant_coordinator_steps_down(self, ctx):
        # Force both diamond relays to coordinate, then let tenure expire:
        # one of them must withdraw as redundant.
        positions = np.array([
            [0.0, 0.0], [200.0, 80.0], [200.0, -80.0], [400.0, 0.0]])
        config = CoordinatorConfig(tenure_rounds=2, round_s=0.5)
        channel, agents = build_span(ctx, positions, config=config)
        ctx.simulator.run(until=1.2)  # let HELLOs circulate
        for agent in (agents[1], agents[2]):
            agent.role = CoordinatorRole.COORDINATOR
            agent._tenure = 0
            agent._beacon()
        ctx.simulator.run(until=12.0)
        coords = coordinator_set(agents) & {1, 2}
        assert len(coords) == 1  # exactly one survived; the other withdrew
        assert agents[1].withdrawals + agents[2].withdrawals >= 1

    def test_backbone_repairs_after_withdrawal(self, ctx):
        # After the redundant one leaves, 0-3 connectivity must persist via
        # the surviving coordinator.
        positions = np.array([
            [0.0, 0.0], [200.0, 80.0], [200.0, -80.0], [400.0, 0.0]])
        channel, agents = build_span(ctx, positions)
        ctx.simulator.run(until=12.0)
        coords = coordinator_set(agents)
        assert coords & {1, 2}
