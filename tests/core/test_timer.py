"""Tests for the candidate timer (arm / suppress / fire)."""

from repro.core.timer import CandidateState, CandidateTimer
from repro.sim.components import Component


def make(ctx):
    comp = Component(ctx, "t")
    wins = []
    timer = CandidateTimer(comp, lambda: wins.append(ctx.now))
    return timer, wins


def test_fires_after_delay(ctx):
    timer, wins = make(ctx)
    timer.arm(0.5)
    ctx.simulator.run()
    assert wins == [0.5]
    assert timer.state == CandidateState.ANNOUNCED


def test_suppress_cancels(ctx):
    timer, wins = make(ctx)
    timer.arm(0.5)
    assert timer.suppress() is True
    ctx.simulator.run()
    assert wins == []
    assert timer.state == CandidateState.SUPPRESSED


def test_suppress_idle_timer_reports_false(ctx):
    timer, wins = make(ctx)
    assert timer.suppress() is False


def test_rearm_replaces_pending(ctx):
    timer, wins = make(ctx)
    timer.arm(0.5)
    timer.arm(1.5)  # re-arm pushes the deadline out
    ctx.simulator.run()
    assert wins == [1.5]


def test_armed_property(ctx):
    timer, _ = make(ctx)
    assert not timer.armed
    timer.arm(1.0)
    assert timer.armed
    ctx.simulator.run()
    assert not timer.armed


def test_suppress_after_fire_keeps_announced_state(ctx):
    timer, wins = make(ctx)
    timer.arm(0.1)
    ctx.simulator.run()
    timer.suppress()
    assert timer.state == CandidateState.ANNOUNCED
    assert wins == [0.1]
