"""Tests for the standalone local leader election protocol (Section 2)."""

import numpy as np
import pytest

from repro.core.backoff import FunctionBackoff, RandomBackoff, SignalStrengthBackoff
from repro.core.election import ElectionConfig, ElectionNode
from repro.phy.propagation import FreeSpace, range_to_threshold_dbm
from tests.conftest import line_positions, make_mac_stack


def build_election(ctx, positions, policy=None, use_arbiter=True,
                   candidates=None, observe=None, **config_kwargs):
    channel, radios, macs = make_mac_stack(ctx, positions)
    config = ElectionConfig(
        policy=policy if policy is not None else RandomBackoff(max_delay=0.05),
        use_arbiter=use_arbiter,
        **config_kwargs,
    )
    nodes = []
    for i, mac in enumerate(macs):
        is_candidate = True if candidates is None else (i in candidates)
        nodes.append(ElectionNode(ctx, i, mac, config, candidate=is_candidate,
                                  observe=observe))
    return channel, radios, macs, nodes


def clique(n):
    """n nodes within range of each other (50 m spacing on a line)."""
    return line_positions(n, spacing=30.0)


class TestBasicElection:
    def test_single_leader_on_clique(self, ctx):
        channel, radios, macs, nodes = build_election(ctx, clique(6))
        uid = nodes[0].trigger()
        ctx.simulator.run(until=2.0)
        leaders = {node.leader_of(uid) for node in nodes}
        assert len(leaders) == 1
        leader = leaders.pop()
        assert leader is not None and leader != 0  # trigger node competes as arbiter, not candidate

    def test_every_node_learns_the_leader(self, ctx):
        channel, radios, macs, nodes = build_election(ctx, clique(5))
        learned = []
        for node in nodes:
            node.elected.connect(lambda uid, leader, nid=node.node_id:
                                 learned.append((nid, leader)))
        uid = nodes[0].trigger()
        ctx.simulator.run(until=2.0)
        assert {nid for nid, _ in learned} == {0, 1, 2, 3, 4}
        assert len({leader for _, leader in learned}) == 1

    def test_only_one_announcement_on_clique(self, ctx):
        channel, radios, macs, nodes = build_election(ctx, clique(6))
        nodes[0].trigger()
        ctx.simulator.run(until=2.0)
        assert channel.tx_count_by_kind["announce"] == 1

    def test_deterministic_across_reruns(self):
        from repro.sim.components import SimContext
        from repro.sim.engine import Simulator
        from repro.sim.rng import RandomStreams

        winners = []
        for _ in range(2):
            ctx = SimContext(Simulator(), RandomStreams(99))
            channel, radios, macs, nodes = build_election(ctx, clique(5))
            uid = nodes[0].trigger()
            ctx.simulator.run(until=2.0)
            winners.append(nodes[0].leader_of(uid))
        assert winners[0] == winners[1]

    def test_non_candidate_never_wins(self, ctx):
        channel, radios, macs, nodes = build_election(
            ctx, clique(4), candidates={1})
        uid = nodes[0].trigger()
        ctx.simulator.run(until=2.0)
        assert nodes[0].leader_of(uid) == 1

    def test_observe_hook_feeds_the_policy(self, ctx):
        # A custom observe hook that inverts rx power makes the *nearest*
        # candidate win under the signal-strength policy.
        from repro.core.backoff import BackoffInput

        positions = np.array([[0.0, 0.0], [50.0, 0.0], [200.0, 0.0]])
        rx_threshold = range_to_threshold_dbm(FreeSpace(), 15.0, 250.0)
        policy = SignalStrengthBackoff(lam=0.05, rx_threshold_dbm=rx_threshold,
                                       jitter=0.0)
        rng = np.random.default_rng(0)

        def inverted(packet, rx):
            # Reflect the power around a pivot so near looks far.
            return BackoffInput(rng=rng, rx_power_dbm=2 * rx_threshold + 30 - rx.power_dbm)

        channel, radios, macs, nodes = build_election(
            ctx, positions, policy=policy, observe=inverted)
        uid = nodes[0].trigger()
        ctx.simulator.run(until=2.0)
        assert nodes[0].leader_of(uid) == 1

    def test_multiple_rounds_are_independent(self, ctx):
        channel, radios, macs, nodes = build_election(ctx, clique(5))
        uid1 = nodes[0].trigger()
        ctx.simulator.run(until=2.0)
        uid2 = nodes[0].trigger()
        ctx.simulator.run(until=4.0)
        assert uid1 != uid2
        assert nodes[0].leader_of(uid1) is not None
        assert nodes[0].leader_of(uid2) is not None


class TestArbiter:
    def test_arbiter_acks_announcement(self, ctx):
        channel, radios, macs, nodes = build_election(ctx, clique(4))
        nodes[0].trigger()
        ctx.simulator.run(until=2.0)
        assert channel.tx_count_by_kind["net_ack"] == 1

    def test_arbiter_retriggers_when_nobody_answers(self, ctx):
        # No candidates at all: the arbiter retries up to max_retriggers.
        channel, radios, macs, nodes = build_election(
            ctx, clique(3), candidates=set(), arbiter_timeout_s=0.1,
            max_retriggers=2)
        nodes[0].trigger()
        ctx.simulator.run(until=5.0)
        assert channel.tx_count_by_kind["sync"] == 3  # original + 2 retries

    def test_no_arbiter_no_ack_no_retrigger(self, ctx):
        channel, radios, macs, nodes = build_election(
            ctx, clique(3), use_arbiter=False, candidates=set())
        nodes[0].trigger()
        ctx.simulator.run(until=5.0)
        assert channel.tx_count_by_kind["sync"] == 1
        assert channel.tx_count_by_kind["net_ack"] == 0

    def test_retrigger_stops_once_leader_found(self, ctx):
        # Candidates exist; one election round must be enough.
        channel, radios, macs, nodes = build_election(
            ctx, clique(4), arbiter_timeout_s=0.2)
        nodes[0].trigger()
        ctx.simulator.run(until=5.0)
        assert channel.tx_count_by_kind["sync"] == 1


class TestSignalStrengthElection:
    def test_farthest_candidate_wins_with_ssaf_policy(self, ctx):
        # A line where node 0 triggers; candidates at 50/100/200 m.  With the
        # signal-strength policy and no jitter, the farthest decodable
        # candidate must win.
        positions = np.array([[0.0, 0.0], [50.0, 0.0], [100.0, 0.0], [200.0, 0.0]])
        rx_threshold = range_to_threshold_dbm(FreeSpace(), 15.0, 250.0)
        policy = SignalStrengthBackoff(lam=0.05, rx_threshold_dbm=rx_threshold,
                                       jitter=0.0)
        channel, radios, macs, nodes = build_election(ctx, positions, policy=policy)
        uid = nodes[0].trigger()
        ctx.simulator.run(until=2.0)
        assert nodes[0].leader_of(uid) == 3


class TestPartitionedElection:
    def test_out_of_range_island_elects_nobody(self, ctx):
        # Two islands: trigger in one; the other never hears the sync.
        positions = np.array([[0.0, 0.0], [50.0, 0.0], [5000.0, 0.0], [5050.0, 0.0]])
        channel, radios, macs, nodes = build_election(ctx, positions)
        uid = nodes[0].trigger()
        ctx.simulator.run(until=2.0)
        assert nodes[1].leader_of(uid) is not None
        assert nodes[2].leader_of(uid) is None
        assert nodes[3].leader_of(uid) is None
