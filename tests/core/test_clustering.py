"""Tests for LEACH-style cluster-head election."""

import numpy as np
import pytest

from repro.core.clustering import ClusterConfig, ClusterNode
from repro.stats.flows import jain_index
from tests.conftest import line_positions, make_mac_stack


def build(ctx, positions, config=None, energies=None):
    channel, radios, macs = make_mac_stack(ctx, np.asarray(positions))
    config = config if config is not None else ClusterConfig()
    nodes = [ClusterNode(ctx, i, mac, config,
                         energy=(energies[i] if energies else 1.0))
             for i, mac in enumerate(macs)]
    return channel, nodes


def dense_field(n=25, seed=2):
    rng = np.random.default_rng(seed)
    return rng.uniform(0, 300, size=(n, 2))  # everyone within ~1-2 hops


class TestElection:
    def test_every_node_is_head_or_member(self, ctx):
        channel, nodes = build(ctx, dense_field())
        ctx.simulator.run(until=1.5)  # all round-0 election windows closed
        for node in nodes:
            assert node.is_head or node.head is not None, node.node_id

    def test_members_point_at_real_in_range_heads(self, ctx):
        channel, nodes = build(ctx, dense_field())
        ctx.simulator.run(until=1.5)
        heads = {n.node_id for n in nodes if n.is_head}
        for node in nodes:
            if not node.is_head and node.head is not None:
                assert node.head in heads
                assert node.head in channel.reach[node.node_id]

    def test_heads_are_a_minority_on_a_clique(self, ctx):
        # Fully connected: the first announcement suppresses everyone, so a
        # round should elect very few heads.
        channel, nodes = build(ctx, line_positions(12, spacing=20.0))
        ctx.simulator.run(until=1.5)
        heads = sum(1 for n in nodes if n.is_head)
        assert 1 <= heads <= 3

    def test_fullest_battery_wins_on_clique(self, ctx):
        energies = [0.3] * 6
        energies[4] = 1.0
        config = ClusterConfig(jitter=0.001)
        channel, nodes = build(ctx, line_positions(6, spacing=20.0),
                               config=config, energies=energies)
        ctx.simulator.run(until=1.5)
        assert nodes[4].is_head

    def test_heads_learn_their_members(self, ctx):
        channel, nodes = build(ctx, line_positions(5, spacing=20.0))
        ctx.simulator.run(until=1.5)
        heads = [n for n in nodes if n.is_head]
        total_members = set().union(*(h.members for h in heads)) if heads else set()
        member_ids = {n.node_id for n in nodes if not n.is_head and n.head is not None}
        assert member_ids <= total_members | member_ids  # joins delivered
        assert any(h.members for h in heads)


class TestRotation:
    def test_role_rotates_and_energy_drains_evenly(self, ctx):
        config = ClusterConfig(round_s=1.0, head_drain=0.1, member_drain=0.01)
        channel, nodes = build(ctx, line_positions(8, spacing=20.0), config=config)
        ctx.simulator.run(until=25.0)
        # Everybody should have served at least once...
        served = [n.rounds_as_head for n in nodes]
        assert sum(served) > 0
        assert sum(1 for s in served if s > 0) >= 5
        # ...and residual energy stays fair across the cluster.
        assert jain_index([n.energy + 0.01 for n in nodes]) > 0.85

    def test_depleted_nodes_stop_volunteering(self, ctx):
        energies = [1.0, 1.0, 0.0, 1.0]
        channel, nodes = build(ctx, line_positions(4, spacing=20.0),
                               energies=energies)
        ctx.simulator.run(until=10.0)
        assert nodes[2].rounds_as_head == 0


class TestSparseTopology:
    def test_far_apart_clusters_elect_separate_heads(self, ctx):
        # Two islands out of radio range: one head each (no cross-talk).
        left = line_positions(4, spacing=20.0)
        right = line_positions(4, spacing=20.0) + np.array([5000.0, 0.0])
        channel, nodes = build(ctx, np.vstack([left, right]))
        ctx.simulator.run(until=1.5)
        left_heads = sum(1 for n in nodes[:4] if n.is_head)
        right_heads = sum(1 for n in nodes[4:] if n.is_head)
        assert left_heads >= 1 and right_heads >= 1
