"""The election's documented imperfections (Section 2), demonstrated.

"This simple solution is not guaranteed to produce at least one local
leader ... It cannot guarantee only one local leader either, since the
announcement packet sent by a node may be out of radio range of some nodes."
The arbiter mends both — these tests show the raw behaviour and the mend.
"""

import numpy as np
import pytest

from repro.core.backoff import RandomBackoff
from repro.core.election import ElectionConfig, ElectionNode
from repro.phy.channel import Channel
from tests.conftest import make_mac_stack


def build(ctx, positions, use_arbiter, seed_suffix=""):
    channel, radios, macs = make_mac_stack(ctx, np.asarray(positions, dtype=float))
    config = ElectionConfig(policy=RandomBackoff(max_delay=0.05),
                            use_arbiter=use_arbiter, arbiter_timeout_s=0.2)
    nodes = [ElectionNode(ctx, i, mac, config, candidate=(i != 0))
             for i, mac in enumerate(macs)]
    return channel, nodes


class TestMultipleLeaders:
    #   1        2
    #    \      /
    #     0 (trigger)
    # Candidates 1 and 2 hear the trigger but NOT each other (480 m apart,
    # 250 m range): announcement suppression cannot work between them.
    POSITIONS = [[0.0, 0.0], [-240.0, 0.0], [240.0, 0.0]]

    def test_hidden_candidates_both_announce_without_arbiter(self, ctx):
        channel, nodes = build(ctx, self.POSITIONS, use_arbiter=False)
        nodes[0].trigger()
        ctx.simulator.run(until=2.0)
        # Neither could suppress the other: two announcements, two
        # self-declared leaders ("multiple local leaders, as mentioned
        # earlier, may be welcomed for redundancy").
        assert channel.tx_count_by_kind["announce"] == 2
        assert nodes[1].rounds and nodes[2].rounds

    def test_arbiter_ack_converges_views(self, ctx):
        channel, nodes = build(ctx, self.POSITIONS, use_arbiter=True)
        uid = nodes[0].trigger()
        ctx.simulator.run(until=2.0)
        # Both may have announced, but the arbiter acked exactly one — and
        # its authoritative ack reaches both candidates.
        assert channel.tx_count_by_kind["net_ack"] == 1
        winner = nodes[0].leader_of(uid)
        assert winner in (1, 2)
        assert nodes[1].leader_of(uid) == winner
        assert nodes[2].leader_of(uid) == winner


class TestNoLeader:
    def test_collision_can_void_a_round_without_arbiter(self, ctx):
        # Two candidates equidistant from the trigger with near-identical
        # backoffs: force a collision by pinning the policy to a constant.
        from repro.core.backoff import FunctionBackoff

        positions = [[0.0, 0.0], [-100.0, 0.0], [100.0, 0.0]]
        channel, radios, macs = make_mac_stack(ctx, np.asarray(positions))
        config = ElectionConfig(policy=FunctionBackoff(fn=lambda obs: 0.01),
                                use_arbiter=False)
        nodes = [ElectionNode(ctx, i, mac, config, candidate=(i != 0))
                 for i, mac in enumerate(macs)]
        uid = nodes[0].trigger()
        ctx.simulator.run(until=2.0)
        # Both announced simultaneously; with CSMA both may still get
        # through (carrier sense) or collide.  Whatever happened, without an
        # arbiter the trigger node may be left without a leader — assert
        # only the documented possibility, not a certainty:
        assert nodes[0].leader_of(uid) is None or channel.tx_count_by_kind["announce"] >= 1

    def test_arbiter_retries_until_resolution(self, ctx):
        from repro.core.backoff import FunctionBackoff

        positions = [[0.0, 0.0], [-100.0, 0.0], [100.0, 0.0]]
        channel, radios, macs = make_mac_stack(ctx, np.asarray(positions))
        config = ElectionConfig(policy=FunctionBackoff(fn=lambda obs: 0.01),
                                use_arbiter=True, arbiter_timeout_s=0.1,
                                max_retriggers=8)
        nodes = [ElectionNode(ctx, i, mac, config, candidate=(i != 0))
                 for i, mac in enumerate(macs)]
        uid = nodes[0].trigger()
        ctx.simulator.run(until=5.0)
        assert nodes[0].leader_of(uid) is not None
