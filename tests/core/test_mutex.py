"""Tests for token-election mutual exclusion: safety, liveness, fairness."""

import numpy as np
import pytest

from repro.core.mutex import MutexConfig, MutexState, TokenMutex
from tests.conftest import line_positions, make_mac_stack


def build_mutex(ctx, n=5, config=None):
    channel, radios, macs = make_mac_stack(ctx, line_positions(n, spacing=30.0))
    nodes = [TokenMutex(ctx, i, mac, config=config, has_token=(i == 0))
             for i, mac in enumerate(macs)]
    return channel, radios, nodes


class CsWorkload:
    """Drives acquire→hold→release cycles and records CS occupancy."""

    def __init__(self, ctx, node: TokenMutex, hold_s: float = 0.05):
        self.ctx = ctx
        self.node = node
        self.hold_s = hold_s
        self.entries: list[tuple[float, float]] = []  # (enter, leave)
        self.completed = 0

    def request(self) -> None:
        self.node.acquire(on_acquire=self._entered)

    def _entered(self) -> None:
        enter = self.ctx.simulator.now
        self.ctx.simulator.schedule(self.hold_s, self._leave, enter)

    def _leave(self, enter: float) -> None:
        self.entries.append((enter, self.ctx.simulator.now))
        self.completed += 1
        self.node.release()


class TestSafety:
    def test_critical_sections_never_overlap(self, ctx):
        channel, radios, nodes = build_mutex(ctx, n=5)
        workloads = [CsWorkload(ctx, node) for node in nodes]
        rng = np.random.default_rng(0)
        for workload in workloads:
            for _ in range(4):
                ctx.simulator.schedule(float(rng.uniform(0, 3.0)), workload.request)
        ctx.simulator.run(until=30.0)

        intervals = sorted(
            interval for w in workloads for interval in w.entries)
        for (enter_a, leave_a), (enter_b, _) in zip(intervals, intervals[1:]):
            assert leave_a <= enter_b + 1e-9, "two nodes overlapped in the CS"

    def test_exactly_one_token_holder_at_rest(self, ctx):
        channel, radios, nodes = build_mutex(ctx, n=4)
        workloads = [CsWorkload(ctx, node) for node in nodes]
        for i, workload in enumerate(workloads):
            ctx.simulator.schedule(0.1 * (i + 1), workload.request)
        ctx.simulator.run(until=20.0)
        assert sum(1 for node in nodes if node.holds_token) == 1


class TestLiveness:
    def test_every_requester_eventually_enters(self, ctx):
        channel, radios, nodes = build_mutex(ctx, n=6)
        workloads = [CsWorkload(ctx, node) for node in nodes]
        for i, workload in enumerate(workloads):
            ctx.simulator.schedule(0.05 * i, workload.request)
        ctx.simulator.run(until=30.0)
        for i, workload in enumerate(workloads):
            assert workload.completed == 1, f"node {i} starved"

    def test_token_returns_to_holder_when_unwanted(self, ctx):
        config = MutexConfig(offer_timeout_s=0.05, max_reoffers=2)
        channel, radios, nodes = build_mutex(ctx, n=3, config=config)
        workload = CsWorkload(ctx, nodes[0])
        workload.request()
        ctx.simulator.run(until=5.0)
        assert workload.completed == 1
        # Nobody else wanted it: the token parks at node 0, idle.
        assert nodes[0].state == MutexState.HOLDING_IDLE

    def test_holder_reoffers_on_late_request(self, ctx):
        channel, radios, nodes = build_mutex(ctx, n=3)
        w0 = CsWorkload(ctx, nodes[0])
        w2 = CsWorkload(ctx, nodes[2])
        w0.request()
        # Node 2 asks long after the token went idle at node 0.
        ctx.simulator.schedule(5.0, w2.request)
        ctx.simulator.run(until=15.0)
        assert w2.completed == 1

    def test_repeated_cycles(self, ctx):
        channel, radios, nodes = build_mutex(ctx, n=3)
        workload = CsWorkload(ctx, nodes[1])

        def again():
            if workload.completed < 5:
                workload.request()

        # Chain five acquire/release cycles on node 1.
        original_leave = workload._leave
        def leave_and_again(enter):
            original_leave(enter)
            ctx.simulator.schedule(0.05, again)
        workload._leave = leave_and_again
        workload.request()
        ctx.simulator.run(until=30.0)
        assert workload.completed == 5


class TestFairness:
    def test_longest_waiter_tends_to_win(self, ctx):
        # Node 1 requests long before node 2; when the token frees up, the
        # aged bid of node 1 must beat node 2's.
        channel, radios, nodes = build_mutex(ctx, n=3)
        w0 = CsWorkload(ctx, nodes[0], hold_s=2.0)  # long critical section
        w1 = CsWorkload(ctx, nodes[1])
        w2 = CsWorkload(ctx, nodes[2])
        w0.request()                                  # enters immediately
        ctx.simulator.schedule(0.1, w1.request)       # waits ~1.9 s
        ctx.simulator.schedule(1.9, w2.request)       # waits ~0.1 s
        ctx.simulator.run(until=10.0)
        assert w1.entries and w2.entries
        assert w1.entries[0][0] < w2.entries[0][0], \
            "the longer-waiting node should be granted first"
