"""Tests for terminal visualization."""

import numpy as np

from repro.viz.ascii_chart import line_chart
from repro.viz.paths import corridor_usage, path_summary, relay_heatmap


class TestLineChart:
    def test_contains_markers_and_legend(self):
        chart = line_chart({"aodv": [(1, 1.0), (2, 2.0)],
                            "rr": [(1, 2.0), (2, 1.0)]}, title="Delay")
        assert "Delay" in chart
        assert "o=aodv" in chart and "x=rr" in chart
        assert "o" in chart and "x" in chart

    def test_empty_series(self):
        assert "(no data)" in line_chart({}, title="t")

    def test_flat_series_does_not_crash(self):
        chart = line_chart({"a": [(1, 5.0), (2, 5.0)]})
        assert "a" in chart

    def test_single_point(self):
        chart = line_chart({"a": [(1, 1.0)]})
        assert "o=a" in chart


class TestRelayHeatmap:
    def test_endpoints_marked(self):
        positions = np.array([[0.0, 0.0], [50.0, 50.0], [100.0, 100.0]])
        art = relay_heatmap(positions, [(1,)], endpoints={"A": 0, "B": 2})
        assert "A" in art and "B" in art

    def test_usage_shading_present(self):
        positions = np.array([[0.0, 0.0], [50.0, 50.0], [100.0, 100.0]])
        art = relay_heatmap(positions, [(1,), (1,), (1,)])
        assert any(shade in art for shade in "@%#*")

    def test_empty_paths(self):
        positions = np.array([[0.0, 0.0], [100.0, 100.0]])
        art = relay_heatmap(positions, [])
        assert "┌" in art and "└" in art


class TestPathSummary:
    def test_counts_and_orders(self):
        text = path_summary([(1, 2), (1, 2), (3,)])
        lines = text.splitlines()
        assert "2×" in lines[0] and "1 → 2" in lines[0]
        assert "1×" in lines[1]

    def test_direct_path_label(self):
        assert "(direct)" in path_summary([()])


class TestCorridorUsage:
    def test_fraction_inside(self):
        positions = np.array([[0.0, 0.0], [10.0, 0.0], [500.0, 0.0]])
        paths = [(0, 1), (2,)]
        usage = corridor_usage(positions, paths, center=(0.0, 0.0), radius_m=50.0)
        assert usage == 2 / 3

    def test_empty_paths_zero(self):
        positions = np.array([[0.0, 0.0]])
        assert corridor_usage(positions, [], (0, 0), 10.0) == 0.0
