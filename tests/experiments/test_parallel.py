"""Tests for the process-parallel sweep runner."""

import pytest

from repro.experiments.fig1_ssaf import Fig1Config, run_one
from repro.experiments.parallel import default_workers, parallel_sweep

TINY = Fig1Config(n_nodes=25, terrain_m=500.0, n_connections=2,
                  intervals_s=(1.0, 2.0), duration_s=5.0, seeds=(1, 2))


class TestParallelSweep:
    def test_matches_serial_exactly(self):
        serial = parallel_sweep(run_one, TINY.protocols, TINY.intervals_s,
                                TINY.seeds, TINY, max_workers=1)
        parallel = parallel_sweep(run_one, TINY.protocols, TINY.intervals_s,
                                  TINY.seeds, TINY, max_workers=2)
        for protocol in TINY.protocols:
            assert serial[protocol].xs == parallel[protocol].xs
            for x in serial[protocol].xs:
                for metric in ("delivery_ratio", "avg_delay_s", "avg_hops",
                               "mac_packets"):
                    assert serial[protocol].metric(x, metric) == \
                        parallel[protocol].metric(x, metric)

    def test_all_cells_present(self):
        results = parallel_sweep(run_one, TINY.protocols, TINY.intervals_s,
                                 TINY.seeds, TINY, max_workers=2)
        for protocol in TINY.protocols:
            series = results[protocol]
            assert series.xs == sorted(TINY.intervals_s)
            for x in series.xs:
                assert series.metric(x, "delivery_ratio").n == len(TINY.seeds)

    def test_default_workers_positive(self):
        assert default_workers() >= 1

    def test_serial_runner_equals_parallel_sweep(self):
        """The serial figure runner and parallel_sweep at workers=1 and 2
        must produce identical SweepSeries."""
        from repro.experiments.fig1_ssaf import run_fig1

        serial = run_fig1(TINY)
        for workers in (1, 2):
            swept = parallel_sweep(run_one, TINY.protocols, TINY.intervals_s,
                                   TINY.seeds, TINY, max_workers=workers)
            for protocol in TINY.protocols:
                assert serial[protocol].xs == swept[protocol].xs
                for x in serial[protocol].xs:
                    for metric in ("delivery_ratio", "avg_delay_s",
                                   "avg_hops", "mac_packets"):
                        assert serial[protocol].metric(x, metric) == \
                            swept[protocol].metric(x, metric)


class TestMaxWorkersEnv:
    def test_env_bounds_fanout(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_WORKERS", "1")
        assert default_workers() == 1

    def test_env_clamped_to_at_least_one(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_WORKERS", "0")
        assert default_workers() == 1
        monkeypatch.setenv("REPRO_MAX_WORKERS", "-3")
        assert default_workers() == 1

    def test_env_never_raises_above_cores(self, monkeypatch):
        unbounded = default_workers()
        monkeypatch.setenv("REPRO_MAX_WORKERS", "4096")
        assert default_workers() == unbounded

    def test_garbage_env_ignored(self, monkeypatch):
        unbounded = default_workers()
        monkeypatch.setenv("REPRO_MAX_WORKERS", "lots")
        assert default_workers() == unbounded

    def test_extra_kwargs_forwarded(self):
        from repro.experiments.fig3_rr_vs_aodv import Fig3Config
        from repro.experiments.fig3_rr_vs_aodv import run_one as fig3_run_one

        config = Fig3Config(n_nodes=40, terrain_m=600.0, duration_s=6.0)
        results = parallel_sweep(
            fig3_run_one, ("routeless",), (1,), (1,), config,
            max_workers=1, extra_kwargs={"failure_fraction": 0.05})
        assert results["routeless"].metric(1.0, "delivery_ratio").n == 1
