"""The scaling experiment's grids: quick CI defaults, the paper grid, and
the ``--large`` 10,000-node sparse-channel cell behind REPRO_LARGE_SCALE."""

import os

import pytest

from repro.experiments.common import large_scale, paper_scale
from repro.experiments.ext_scaling import ScalingConfig, run_one, terrain_for


@pytest.fixture(autouse=True)
def clean_scale_env(monkeypatch):
    monkeypatch.delenv("REPRO_LARGE_SCALE", raising=False)
    monkeypatch.delenv("REPRO_PAPER_SCALE", raising=False)


class TestActiveGrid:
    def test_quick_default(self):
        assert not large_scale() and not paper_scale()
        config = ScalingConfig.active()
        assert config == ScalingConfig()
        assert max(config.node_counts) <= 500

    def test_paper_env_selects_paper_grid(self, monkeypatch):
        monkeypatch.setenv("REPRO_PAPER_SCALE", "1")
        assert ScalingConfig.active() == ScalingConfig.paper()

    def test_large_env_selects_10k_grid(self, monkeypatch):
        monkeypatch.setenv("REPRO_LARGE_SCALE", "1")
        assert large_scale()
        config = ScalingConfig.active()
        assert config == ScalingConfig.large()
        assert 10_000 in config.node_counts

    def test_large_wins_over_paper(self, monkeypatch):
        monkeypatch.setenv("REPRO_LARGE_SCALE", "1")
        monkeypatch.setenv("REPRO_PAPER_SCALE", "1")
        assert ScalingConfig.active() == ScalingConfig.large()

    @pytest.mark.parametrize("value", ["", "0", "false"])
    def test_falsey_values_stay_quick(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_LARGE_SCALE", value)
        assert not large_scale()

    def test_large_grid_is_one_cheap_cell_shape(self):
        config = ScalingConfig.large()
        assert len(config.seeds) == 1
        assert len(config.protocols) == 1
        assert config.duration_s <= 15.0


class TestLargeFlagPlumbing:
    def test_campaign_cli_has_large_flag(self, monkeypatch):
        from repro.experiments.cli import build_parser
        args = build_parser().parse_args(["scaling", "--large"])
        assert args.large

    def test_profile_cli_has_large_flag(self):
        from repro.experiments.profile_cli import build_parser
        args = build_parser().parse_args(["scaling", "--large"])
        assert args.large


class TestAutoSparseAtScale:
    def test_scaling_cell_above_cutoff_goes_sparse(self):
        """Any scaling cell at n >= 1024 picks the sparse representation
        through the default ``link_budget="auto"`` — no per-experiment
        opt-in needed."""
        from repro.experiments.common import ScenarioConfig, build_protocol_network

        terrain = terrain_for(1500)
        scenario = ScenarioConfig(n_nodes=1500, width_m=terrain,
                                  height_m=terrain, range_m=250.0, seed=1)
        net = build_protocol_network("counter1", scenario)
        assert net.channel.link_budget == "sparse"
        # The dense float64 matrices alone would be 4 * n^2 * 8 bytes.
        assert net.channel.link_budget_bytes() < 4 * 1500 * 1500 * 8 / 10


@pytest.mark.skipif(not os.environ.get("REPRO_LARGE_SCALE"),
                    reason="10k-node cell: set REPRO_LARGE_SCALE=1 "
                           "(repro campaign scaling --large) to run")
def test_ten_thousand_node_cell_completes_sparse():
    from repro.obs.observe import Observability

    obs = Observability()
    result = run_one("counter1", 10_000, 1, ScalingConfig.large(), obs=obs)
    assert result.metrics["generated"] > 0
    family = obs.registry.get("repro_channel_link_budget_bytes")
    peak = next(iter(family.describe()["samples"].values()))
    assert 0 < peak < 200e6  # the acceptance bar: far below dense's ~2.4 GB
