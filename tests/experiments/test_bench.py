"""Tests for the benchmark-regression harness (repro.experiments.bench)."""

import json

import pytest

from repro.experiments import bench
from repro.experiments.cli import main as cli_main


def snapshot(walls: dict) -> dict:
    return {
        "schema": bench.SCHEMA_VERSION,
        "benchmarks": {
            name: {"wall_s": wall, "ops_per_s": 1.0 / wall,
                   "events_per_s": None, "events": 1, "repeats": 1}
            for name, wall in walls.items()
        },
    }


class TestCompare:
    def test_no_regression_within_threshold(self):
        base = snapshot({"a": 0.100})
        current = snapshot({"a": 0.125})
        assert bench.compare(current, base, threshold=0.30) == []

    def test_regression_past_threshold(self):
        base = snapshot({"a": 0.100})
        current = snapshot({"a": 0.140})
        report = bench.compare(current, base, threshold=0.30)
        assert len(report) == 1 and "a:" in report[0]

    def test_speedups_never_flag(self):
        report = bench.compare(snapshot({"a": 0.05}), snapshot({"a": 0.100}), 0.0)
        assert report == []

    def test_new_benchmark_without_baseline_is_ignored(self):
        base = snapshot({"a": 0.1})
        current = snapshot({"a": 0.1, "b": 99.0})
        assert bench.compare(current, base, threshold=0.30) == []

    def test_empty_baseline(self):
        assert bench.compare(snapshot({"a": 0.1}), {}, 0.30) == []


@pytest.fixture
def tiny_benchmarks(monkeypatch):
    """Replace the real suite with instant fakes so CLI tests stay fast."""
    calls = {"n": 0}

    def fake():
        calls["n"] += 1
        return {"wall_s": 0.001, "ops": 10, "events": 10}

    monkeypatch.setattr(bench, "BENCHMARKS", {"fake_loop": (fake, 2, 1)})
    return calls


class TestCollect:
    def test_collect_shape_and_metadata(self, tiny_benchmarks):
        snap = bench.collect(quick=False)
        assert snap["schema"] == bench.SCHEMA_VERSION
        assert snap["machine"]["python"]
        entry = snap["benchmarks"]["fake_loop"]
        assert entry["wall_s"] == pytest.approx(0.001)
        assert entry["ops_per_s"] == pytest.approx(10_000, rel=0.01)
        assert entry["events_per_s"] == pytest.approx(10_000, rel=0.01)
        assert tiny_benchmarks["n"] == 2  # best-of-repeats

    def test_quick_mode_runs_fewer_repeats(self, tiny_benchmarks):
        bench.collect(quick=True)
        assert tiny_benchmarks["n"] == 1


class TestCli:
    def test_writes_snapshot_when_no_baseline(self, tiny_benchmarks, tmp_path):
        out = tmp_path / "BENCH_kernel.json"
        assert bench.main(["--output", str(out)]) == 0
        data = json.loads(out.read_text())
        assert "fake_loop" in data["benchmarks"]

    def test_passes_against_equal_baseline(self, tiny_benchmarks, tmp_path):
        out = tmp_path / "BENCH_kernel.json"
        assert bench.main(["--output", str(out)]) == 0
        assert bench.main(["--output", str(out)]) == 0

    def test_fails_on_regression_and_keeps_exit_code(self, tiny_benchmarks, tmp_path):
        out = tmp_path / "BENCH_kernel.json"
        out.write_text(json.dumps(snapshot({"fake_loop": 0.0001})))
        assert bench.main(["--output", str(out), "--threshold", "0.3"]) == 1

    def test_no_compare_skips_regression_check(self, tiny_benchmarks, tmp_path):
        out = tmp_path / "BENCH_kernel.json"
        out.write_text(json.dumps(snapshot({"fake_loop": 0.0001})))
        assert bench.main(["--output", str(out), "--no-compare"]) == 0

    def test_no_write_leaves_snapshot_untouched(self, tiny_benchmarks, tmp_path):
        out = tmp_path / "BENCH_kernel.json"
        payload = json.dumps(snapshot({"fake_loop": 1.0}))
        out.write_text(payload)
        assert bench.main(["--output", str(out), "--no-write"]) == 0
        assert out.read_text() == payload

    def test_explicit_baseline_path(self, tiny_benchmarks, tmp_path):
        base = tmp_path / "base.json"
        base.write_text(json.dumps(snapshot({"fake_loop": 0.0001})))
        out = tmp_path / "out.json"
        assert bench.main(["--output", str(out), "--baseline", str(base)]) == 1

    def test_experiments_cli_dispatches_bench(self, tiny_benchmarks, tmp_path):
        out = tmp_path / "BENCH_kernel.json"
        assert cli_main(["bench", "--output", str(out)]) == 0
        assert out.exists()


class TestBaselineErrors:
    """The compare path fails with a clear message and exit 2 — never a
    traceback — on missing, corrupt or foreign-machine baselines."""

    def test_missing_baseline_with_explicit_threshold(self, tiny_benchmarks,
                                                      tmp_path, capsys):
        out = tmp_path / "nonexistent.json"
        code = bench.main(["--output", str(out), "--threshold", "0.3",
                           "--no-write"])
        assert code == 2
        err = capsys.readouterr().err
        assert "no benchmark baseline" in err and "--no-compare" in err

    def test_missing_baseline_with_explicit_baseline_flag(
            self, tiny_benchmarks, tmp_path):
        assert bench.main(["--baseline", str(tmp_path / "gone.json"),
                           "--output", str(tmp_path / "o.json"),
                           "--no-write"]) == 2

    def test_missing_baseline_without_explicit_compare_writes_fresh(
            self, tiny_benchmarks, tmp_path):
        out = tmp_path / "BENCH_kernel.json"
        assert bench.main(["--output", str(out)]) == 0
        assert out.exists()

    def test_corrupt_baseline(self, tiny_benchmarks, tmp_path, capsys):
        out = tmp_path / "BENCH_kernel.json"
        out.write_text("{definitely not json")
        code = bench.main(["--output", str(out), "--threshold", "0.3",
                           "--no-write"])
        assert code == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_non_snapshot_json_baseline(self, tiny_benchmarks, tmp_path,
                                        capsys):
        out = tmp_path / "BENCH_kernel.json"
        out.write_text(json.dumps({"something": "else"}))
        assert bench.main(["--output", str(out), "--threshold", "0.3",
                           "--no-write"]) == 2
        assert "not a bench snapshot" in capsys.readouterr().err

    def foreign_snapshot(self) -> dict:
        snap = snapshot({"fake_loop": 1.0})
        snap["machine"] = {"implementation": "OtherPy", "machine": "sparc64",
                          "processor": "weird"}
        return snap

    def test_foreign_fingerprint_rejected(self, tiny_benchmarks, tmp_path,
                                          capsys):
        out = tmp_path / "BENCH_kernel.json"
        out.write_text(json.dumps(self.foreign_snapshot()))
        code = bench.main(["--output", str(out), "--threshold", "0.3",
                           "--no-write"])
        assert code == 2
        err = capsys.readouterr().err
        assert "different machine" in err and "--ignore-fingerprint" in err

    def test_ignore_fingerprint_compares_anyway(self, tiny_benchmarks,
                                                tmp_path):
        out = tmp_path / "BENCH_kernel.json"
        out.write_text(json.dumps(self.foreign_snapshot()))
        # Baseline is slower than the fake, so comparison passes.
        assert bench.main(["--output", str(out), "--threshold", "0.3",
                           "--ignore-fingerprint", "--no-write"]) == 0

    def test_legacy_baseline_without_machine_meta_still_compares(
            self, tiny_benchmarks, tmp_path):
        out = tmp_path / "BENCH_kernel.json"
        out.write_text(json.dumps(snapshot({"fake_loop": 1.0})))
        assert bench.main(["--output", str(out), "--threshold", "0.3",
                           "--no-write"]) == 0

    def test_same_machine_baseline_passes_fingerprint_check(
            self, tiny_benchmarks, tmp_path):
        out = tmp_path / "BENCH_kernel.json"
        assert bench.main(["--output", str(out)]) == 0  # writes machine meta
        assert bench.main(["--output", str(out), "--threshold", "0.3",
                           "--no-write"]) == 0

    def test_fingerprint_ignores_hostname_and_python_patch(self):
        a = {"implementation": "CPython", "machine": "x86_64",
             "processor": "x86_64", "hostname": "runner-1", "python": "3.12.1"}
        b = dict(a, hostname="runner-2", python="3.12.4")
        assert bench.fingerprint(a) == bench.fingerprint(b)


@pytest.mark.slow
def test_real_benchmarks_run_end_to_end(tmp_path):
    """The actual suite produces sane numbers (quick mode, no comparison)."""
    out = tmp_path / "BENCH_kernel.json"
    assert bench.main(["--quick", "--no-compare", "--output", str(out)]) == 0
    data = json.loads(out.read_text())
    assert set(data["benchmarks"]) == set(bench.BENCHMARKS)
    for entry in data["benchmarks"].values():
        assert entry["wall_s"] > 0
        # Channel-rebuild benchmarks (mobility_tick_2k, dense_rebuild_2k)
        # never drain a simulator, so they report zero events.
        if entry["events"]:
            assert entry["events_per_s"] > 0
