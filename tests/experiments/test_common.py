"""Tests for scenario assembly and flow selection."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.common import (
    PROTOCOLS,
    ScenarioConfig,
    attach_cbr,
    build_network,
    build_protocol_network,
    pick_flows,
)
from repro.mac.csma import MacConfig
from repro.mac.queue import FifoTxQueue, PriorityTxQueue
from repro.net.flooding import SSAF
from repro.sim.rng import RandomStreams


class TestBuildNetwork:
    def test_all_layers_present_and_wired(self):
        scenario = ScenarioConfig(n_nodes=10, width_m=500, height_m=500,
                                  range_m=250, seed=1)
        net = build_protocol_network("counter1", scenario)
        assert len(net.radios) == len(net.macs) == len(net.protocols) == 10
        assert net.channel.n_nodes == 10
        for i, protocol in enumerate(net.protocols):
            assert protocol.node_id == i
            assert protocol.mac is net.macs[i]
            assert net.macs[i].radio is net.radios[i]

    def test_placement_is_connected(self):
        from repro.topology.placement import is_connected
        scenario = ScenarioConfig(n_nodes=30, width_m=800, height_m=800,
                                  range_m=250, seed=5)
        net = build_protocol_network("counter1", scenario)
        assert is_connected(net.positions, 250.0)

    def test_explicit_positions_respected(self):
        positions = np.array([[0.0, 0.0], [10.0, 0.0]])
        scenario = ScenarioConfig(n_nodes=2, positions=positions, seed=1)
        net = build_protocol_network("counter1", scenario)
        assert np.array_equal(net.positions, positions)

    def test_same_seed_same_topology(self):
        scenario = ScenarioConfig(n_nodes=20, seed=9)
        a = build_protocol_network("counter1", scenario)
        b = build_protocol_network("routeless", scenario)
        assert np.array_equal(a.positions, b.positions)

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ValueError):
            build_protocol_network("ospf", ScenarioConfig(n_nodes=5))

    def test_ssaf_gets_priority_queue_and_threshold(self):
        scenario = ScenarioConfig(n_nodes=5, width_m=300, height_m=300, seed=1)
        net = build_protocol_network("ssaf", scenario)
        assert isinstance(net.macs[0].queue, PriorityTxQueue)
        assert isinstance(net.protocols[0], SSAF)
        policy = net.protocols[0].config.policy
        assert policy.rx_threshold_dbm == pytest.approx(net.rx_threshold_dbm)

    def test_other_protocols_get_fifo(self):
        net = build_protocol_network("routeless", ScenarioConfig(n_nodes=5, width_m=300, height_m=300, seed=1))
        assert isinstance(net.macs[0].queue, FifoTxQueue)

    def test_every_registered_protocol_builds(self):
        for protocol in PROTOCOLS:
            net = build_protocol_network(protocol, ScenarioConfig(n_nodes=5, width_m=300, height_m=300, seed=1))
            assert len(net.protocols) == 5

    def test_energy_meters_optional(self):
        net = build_protocol_network(
            "counter1", ScenarioConfig(n_nodes=4, width_m=300, height_m=300, seed=1, with_energy=True))
        assert len(net.energy) == 4
        net2 = build_protocol_network("counter1", ScenarioConfig(n_nodes=4, width_m=300, height_m=300, seed=1))
        assert net2.energy == []


class TestPickFlows:
    @given(st.integers(min_value=10, max_value=100),
           st.integers(min_value=1, max_value=4),
           st.integers(min_value=0, max_value=50))
    @settings(max_examples=50, deadline=None)
    def test_distinct_endpoints(self, n_nodes, n_flows, seed):
        rng = np.random.default_rng(seed)
        flows = pick_flows(n_nodes, n_flows, rng, distinct_endpoints=True)
        endpoints = [node for flow in flows for node in flow]
        assert len(endpoints) == len(set(endpoints))
        assert all(0 <= node < n_nodes for node in endpoints)

    def test_bidirectional_mirrors(self):
        rng = np.random.default_rng(0)
        flows = pick_flows(20, 3, rng, bidirectional=True)
        assert len(flows) == 6
        forward, backward = flows[:3], flows[3:]
        assert backward == [(d, s) for s, d in forward]

    def test_no_self_flows(self):
        rng = np.random.default_rng(0)
        for src, dst in pick_flows(10, 4, rng):
            assert src != dst

    def test_impossible_request_raises(self):
        rng = np.random.default_rng(0)
        with pytest.raises(RuntimeError):
            pick_flows(4, 10, rng, distinct_endpoints=True)


class TestAttachCbr:
    def test_one_source_per_flow(self):
        net = build_protocol_network("counter1", ScenarioConfig(n_nodes=10, seed=1))
        sources = attach_cbr(net, [(0, 5), (2, 7)], interval_s=1.0, stop_s=3.0)
        assert len(sources) == 2
        assert net.sources == sources
        net.run(until=5.0)
        assert all(s.generated >= 3 for s in sources)
