"""The 3-D UAV extension experiment: cells, campaign caching, replay
determinism, and the --quick / --mobility plumbing."""

import dataclasses

import numpy as np
import pytest

from repro.experiments.ext_uav import UavConfig, campaign_spec, run_one

QUICK = UavConfig(n_nodes=25, terrain_m=600.0, depth_m=120.0,
                  duration_s=4.0, n_pairs=2, alphas=(0.5,), seeds=(1,))


def result_tuple(result):
    return (result.metrics["delivery_ratio"], result.metrics["avg_delay_s"],
            result.metrics["mac_packets"], result.metrics["mean_altitude_m"])


def test_run_one_produces_3d_metrics():
    result = run_one("ssaf", 0.5, 1, QUICK)
    assert 0.0 <= result.metrics["delivery_ratio"] <= 1.0
    assert 0.0 <= result.metrics["mean_altitude_m"] <= QUICK.depth_m
    assert result.metrics["max_altitude_m"] <= QUICK.depth_m


def test_run_one_seeded_replay_is_deterministic():
    a = run_one("routeless", 0.5, 1, QUICK)
    b = run_one("routeless", 0.5, 1, QUICK)
    assert result_tuple(a) == result_tuple(b)


def test_alpha_changes_the_outcome():
    smooth = run_one("counter1", 0.95, 1, QUICK)
    jitter = run_one("counter1", 0.0, 1, QUICK)
    assert result_tuple(smooth) != result_tuple(jitter)


def test_mobility_override_rwalk():
    result = run_one("counter1", 0.5, 1, QUICK, mobility="rwalk")
    assert 0.0 <= result.metrics["mean_altitude_m"] <= QUICK.depth_m


def test_virtual_force_variant():
    config = dataclasses.replace(QUICK, virtual_force=True)
    result = run_one("counter1", 0.5, 1, config)
    assert 0.0 <= result.metrics["delivery_ratio"] <= 1.0


def test_campaign_spec_registered():
    from repro.experiments import registry
    registry.load_builtins()
    definition = registry.get("uav")
    assert definition is not None and definition.is_campaign
    spec = campaign_spec(QUICK)
    assert spec.name == "uav"
    assert spec.xs == QUICK.alphas
    assert spec.protocols == QUICK.protocols


def test_campaign_runs_through_cache(tmp_path):
    from repro.campaign import run_spec

    spec = campaign_spec(QUICK)
    first = run_spec(spec, cache_dir=str(tmp_path / "cache"),
                     campaign_dir=str(tmp_path / "c1"))
    assert not first.quarantined
    assert first.summary["executed"] == first.summary["total_cells"]

    second = run_spec(spec, cache_dir=str(tmp_path / "cache"),
                      campaign_dir=str(tmp_path / "c2"))
    assert second.summary["cache_hits"] == second.summary["total_cells"]
    for label, series in first.results.items():
        assert np.array_equal(series.curve("delivery_ratio"),
                              second.results[label].curve("delivery_ratio"))


def test_mobility_override_changes_cache_key(tmp_path):
    from repro.campaign import run_spec

    spec = campaign_spec(QUICK)
    run_spec(spec, cache_dir=str(tmp_path / "cache"),
             campaign_dir=str(tmp_path / "c1"))
    swapped = dataclasses.replace(
        spec, extra_kwargs={**dict(spec.extra_kwargs), "mobility": "rwalk"})
    outcome = run_spec(swapped, cache_dir=str(tmp_path / "cache"),
                       campaign_dir=str(tmp_path / "c2"))
    assert outcome.summary["cache_hits"] == 0


def test_quick_scale_config(monkeypatch):
    monkeypatch.delenv("REPRO_PAPER_SCALE", raising=False)
    monkeypatch.setenv("REPRO_QUICK", "1")
    config = UavConfig.active()
    assert config == UavConfig.quick()
    monkeypatch.delenv("REPRO_QUICK")
    assert UavConfig.active() == UavConfig()


def test_cli_mobility_flag_joins_extra_kwargs():
    from repro.experiments.cli import _with_mobility

    spec = campaign_spec(QUICK)
    assert _with_mobility(spec, None) is spec
    swapped = _with_mobility(spec, "rwalk")
    assert swapped.extra_kwargs["mobility"] == "rwalk"
    with pytest.raises(KeyError):
        _with_mobility(spec, "teleport")
