"""Dense vs sparse link budgets are equivalent end to end (satellite of the
sparse-channel PR).

The sparse representation is a pure speed/memory optimization: on the same
seed it must produce the *same events in the same order* as the dense
matrices — identical reach sets, identical received powers, and identical
run metrics under static, mobility, and fault-plan scenarios.  The fig1
cells additionally pin the sparse path to the recorded seed-implementation
golden numbers.
"""

import numpy as np
import pytest

from repro.experiments.common import (
    ScenarioConfig,
    attach_cbr,
    build_protocol_network,
    pick_flows,
)
from repro.experiments.fig1_ssaf import Fig1Config
from repro.faults import FaultPlan, LinkDegradation, Partition, install_plan
from repro.sim.rng import RandomStreams
from repro.topology.mobility import MobilityConfig, RandomWaypoint

from tests.experiments.test_golden_equivalence import EXACT, GOLDEN, INTERVAL_S


def run_fig1_cell(protocol: str, seed: int, link_budget: str):
    config = Fig1Config()
    scenario = ScenarioConfig(
        n_nodes=config.n_nodes, width_m=config.terrain_m,
        height_m=config.terrain_m, range_m=config.range_m, seed=seed,
        link_budget=link_budget)
    net = build_protocol_network(protocol, scenario)
    flows = pick_flows(config.n_nodes, config.n_connections,
                       RandomStreams(seed + 7777).stream("fig1.flows"),
                       distinct_endpoints=False)
    attach_cbr(net, flows, interval_s=INTERVAL_S,
               stop_s=config.duration_s - 2.0)
    net.run(until=config.duration_s)
    return net


def metrics_tuple(net):
    summary = net.summary()
    return (net.simulator.events_processed, net.channel.tx_count,
            summary.delivered, summary.generated, summary.avg_delay_s,
            summary.avg_hops, net.channel.airtime_s)


@pytest.mark.parametrize("protocol,seed", sorted(GOLDEN))
def test_fig1_sparse_hits_golden_numbers(protocol, seed):
    """The sparse channel reproduces the seed implementation's recording —
    not merely dense-of-today, but the original golden constants."""
    events, tx, delivered, generated, delay, hops, airtime = \
        GOLDEN[(protocol, seed)]
    net = run_fig1_cell(protocol, seed, link_budget="sparse")
    assert net.channel.link_budget == "sparse"
    summary = net.summary()
    assert net.simulator.events_processed == events
    assert net.channel.tx_count == tx
    assert summary.delivered == delivered
    assert summary.generated == generated
    assert summary.avg_delay_s == EXACT(delay)
    assert summary.avg_hops == EXACT(hops)
    assert net.channel.airtime_s == EXACT(airtime)


def test_static_reach_sets_and_rx_powers_identical():
    scenario = dict(n_nodes=80, width_m=700.0, height_m=700.0,
                    range_m=250.0, seed=5)
    dense = build_protocol_network(
        "counter1", ScenarioConfig(link_budget="dense", **scenario))
    sparse = build_protocol_network(
        "counter1", ScenarioConfig(link_budget="sparse", **scenario))
    assert dense.channel.link_budget == "dense"
    assert sparse.channel.link_budget == "sparse"
    for node in range(80):
        assert np.array_equal(dense.channel.reach[node],
                              sparse.channel.reach[node])
        d_power = dense.channel._reach_power_arrays[node]
        s_power = sparse.channel._reach_power_arrays[node]
        np.testing.assert_allclose(s_power, d_power, rtol=0.0, atol=1e-9)
        assert np.array_equal(d_power, s_power)  # in fact bit-identical


def _mobility_net(link_budget: str):
    scenario = ScenarioConfig(n_nodes=60, width_m=700.0, height_m=700.0,
                              range_m=250.0, seed=3,
                              link_budget=link_budget)
    net = build_protocol_network("counter1", scenario)
    flows = pick_flows(60, 4, RandomStreams(3 + 4242).stream("mob.flows"),
                       bidirectional=True)
    endpoints = {node for flow in flows for node in flow}
    RandomWaypoint(net.ctx, net.channel, 700.0, 700.0,
                   MobilityConfig(min_speed_mps=2.0, max_speed_mps=10.0),
                   frozen=endpoints)
    attach_cbr(net, flows, interval_s=1.0, stop_s=8.0)
    net.run(until=10.0)
    return net


def test_mobility_run_metrics_identical():
    """Random-waypoint mobility drives ``move_nodes`` on the sparse path
    and full rebuilds on the dense path; same seed, same outcome."""
    dense = _mobility_net("dense")
    sparse = _mobility_net("sparse")
    assert metrics_tuple(dense) == metrics_tuple(sparse)
    assert dense.summary().generated > 0
    np.testing.assert_array_equal(dense.channel.positions,
                                  sparse.channel.positions)


def _faulted_net(link_budget: str):
    scenario = ScenarioConfig(n_nodes=60, width_m=700.0, height_m=700.0,
                              range_m=250.0, seed=4,
                              link_budget=link_budget)
    net = build_protocol_network("counter1", scenario)
    flows = pick_flows(60, 4, RandomStreams(4 + 4242).stream("chaos.flows"),
                       bidirectional=True)
    endpoints = {node for flow in flows for node in flow}
    plan = FaultPlan(name="sparse-equivalence", faults=(
        LinkDegradation(pairs=((1, 2), (5, 9)), loss_db=200.0,
                        start_s=2.0, stop_s=6.0),
        Partition(groups=((10, 11, 12), (20, 21, 22)),
                  start_s=3.0, stop_s=7.0),
    ))
    install_plan(net, plan, exempt=endpoints)
    attach_cbr(net, flows, interval_s=1.0, stop_s=8.0)
    net.run(until=10.0)
    return net


def test_fault_plan_run_metrics_identical():
    """Fault-driven link offsets flow through ``set_link_offsets`` — the
    sparse path patches only offset-bearing rows, the dense path reuses
    cached distances; both land on the same run."""
    dense = _faulted_net("dense")
    sparse = _faulted_net("sparse")
    assert metrics_tuple(dense) == metrics_tuple(sparse)
    assert dense.summary().generated > 0
