"""Tests for the ``repro obs`` CLI (summary + timeline export)."""

import json

import pytest

from repro.campaign import CampaignSpec
from repro.experiments import cli, obs_cli
from repro.net.packet import PacketKind
from repro.obs.ledger import DropReason, PacketStage


def fake_run_one(protocol, x, seed, config, obs=None, **extra):
    """A deterministic 'cell': a few lifecycle events on the obs bundle."""
    assert obs is not None
    uid = (PacketKind.DATA, 0, seed)
    obs.on_originate(0.0, 0, uid)
    obs.on_tx(0.001, 0, uid, "data", 0.0005)
    obs.on_rx(0.0015, 1, uid, -60.0)
    obs.on_drop(0.002, 1, "net", DropReason.DUPLICATE, uid)
    obs.on_drop(0.003, 2, "mac", DropReason.QUEUE_OVERFLOW, uid)
    obs.on_deliver(0.004, 3, uid, delay_s=0.004, hops=float(x))
    obs.on_election_win(0.004, 2, uid, protocol, backoff_s=0.002)
    return {"protocol": protocol, "x": x, "seed": seed}


@pytest.fixture
def fake_spec(monkeypatch):
    spec = CampaignSpec(name="fakeexp", run_one=fake_run_one,
                        protocols=("ssaf", "counter1"), xs=(1.0, 2.0),
                        seeds=(1, 2), config=object())
    monkeypatch.setattr(cli, "_campaign_spec",
                        lambda name: spec if name == "fakeexp" else None)
    return spec


class TestSummary:
    def test_prints_report_with_drop_reasons(self, fake_spec, capsys):
        assert obs_cli.main(["summary", "fakeexp"]) == 0
        out = capsys.readouterr().out
        assert "fakeexp/ssaf/x=1/seed=1" in out
        assert "duplicate" in out and "queue_overflow" in out
        assert "drops: 2 total" in out

    def test_json_export_sums_reasons_to_total(self, fake_spec, tmp_path,
                                               capsys):
        path = tmp_path / "summary.json"
        assert obs_cli.main(["summary", "fakeexp", "--json", str(path)]) == 0
        report = json.loads(path.read_text())
        assert sum(report["drops_by_reason"].values()) == \
            report["total_drops"] == 2
        assert report["tx_by_kind"] == {"data": 1.0}
        assert report["election_wins"]["ssaf"]["count"] == 1

    def test_cell_selection_flags(self, fake_spec, capsys):
        assert obs_cli.main(["summary", "fakeexp", "--protocol", "counter1",
                             "--x", "2.0", "--seed", "2"]) == 0
        assert "fakeexp/counter1/x=2/seed=2" in capsys.readouterr().out


class TestExport:
    def test_writes_chrome_and_jsonl(self, fake_spec, tmp_path, capsys):
        chrome = tmp_path / "timeline.json"
        jsonl = tmp_path / "timeline.jsonl"
        assert obs_cli.main(["export", "fakeexp", "--chrome", str(chrome),
                             "--jsonl", str(jsonl)]) == 0
        doc = json.loads(chrome.read_text())
        assert doc["traceEvents"]
        assert {e["ph"] for e in doc["traceEvents"]} <= {"X", "i", "M"}
        rows = [json.loads(line) for line in jsonl.read_text().splitlines()]
        assert any(r["stage"] == PacketStage.DELIVER.value for r in rows)

    def test_export_without_paths_errors(self, fake_spec, capsys):
        assert obs_cli.main(["export", "fakeexp"]) == 2
        assert "--chrome" in capsys.readouterr().err


class TestErrors:
    def test_unknown_experiment(self, fake_spec, capsys):
        assert obs_cli.main(["summary", "nosuch"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_off_grid_x(self, fake_spec, capsys):
        assert obs_cli.main(["summary", "fakeexp", "--x", "99"]) == 2
        assert "not on the grid" in capsys.readouterr().err

    def test_off_grid_protocol(self, fake_spec, capsys):
        assert obs_cli.main(["summary", "fakeexp", "--protocol", "nope"]) == 2
        assert "not on the grid" in capsys.readouterr().err


class TestDispatch:
    def test_experiments_cli_routes_obs(self, fake_spec, capsys):
        assert cli.main(["obs", "summary", "fakeexp"]) == 0
        assert "observed cell" in capsys.readouterr().out
