"""Golden equivalence: the optimized kernel + channel reproduce the seed
implementation's results exactly.

The constants below were recorded by running the pre-optimization
(dataclass-Event kernel, per-transmit link-budget slicing) implementation at
commit b9a03f3 on the fixed fig1 cells.  The optimized substrate must
produce the *same events in the same order*, so every counter and metric
must match — integer metrics exactly, float metrics to within strict
tolerance (they are bitwise-identical on the recording machine; the
tolerance only absorbs libm differences across platforms, not algorithmic
drift).

If an intentional behaviour change ever shifts these numbers, re-record
them in the same way and say so in the commit.
"""

import pytest

from repro.experiments.common import (
    ScenarioConfig,
    attach_cbr,
    build_protocol_network,
    pick_flows,
)
from repro.experiments.fig1_ssaf import Fig1Config, campaign_spec
from repro.sim.rng import RandomStreams

# (protocol, seed) -> (events_processed, tx_count, delivered, generated,
#                      avg_delay_s, avg_hops, airtime_s)
GOLDEN = {
    ("counter1", 1): (166591, 2037, 149, 150,
                      0.023124218812259595, 2.7114093959731544, 4.7584319999999485),
    ("counter1", 2): (154226, 2018, 140, 150,
                      0.03846239466552617, 3.414285714285714, 4.714047999999955),
    ("ssaf", 1): (158582, 1988, 150, 150,
                  0.012406270599977922, 2.36, 4.643967999999965),
    ("ssaf", 2): (153077, 2042, 150, 150,
                  0.024220388198449964, 3.0, 4.770111999999947),
}

INTERVAL_S = 1.0
def EXACT(value):
    return pytest.approx(value, rel=1e-12, abs=0.0)


def run_cell(protocol: str, seed: int):
    config = Fig1Config()
    scenario = ScenarioConfig(
        n_nodes=config.n_nodes, width_m=config.terrain_m,
        height_m=config.terrain_m, range_m=config.range_m, seed=seed)
    net = build_protocol_network(protocol, scenario)
    flows = pick_flows(config.n_nodes, config.n_connections,
                       RandomStreams(seed + 7777).stream("fig1.flows"),
                       distinct_endpoints=False)
    attach_cbr(net, flows, interval_s=INTERVAL_S, stop_s=config.duration_s - 2.0)
    net.run(until=config.duration_s)
    return net


@pytest.mark.parametrize("protocol,seed", sorted(GOLDEN))
def test_fig1_cell_matches_seed_implementation(protocol, seed):
    events, tx, delivered, generated, delay, hops, airtime = GOLDEN[(protocol, seed)]
    net = run_cell(protocol, seed)
    summary = net.summary()

    assert net.simulator.events_processed == events
    assert net.channel.tx_count == tx
    assert net.channel.tx_count_by_kind["data"] == tx
    assert summary.delivered == delivered
    assert summary.generated == generated
    assert summary.avg_delay_s == EXACT(delay)
    assert summary.avg_hops == EXACT(hops)
    assert net.channel.airtime_s == EXACT(airtime)


@pytest.mark.slow
def test_parallel_sweep_matches_golden_metrics(tmp_path):
    """The multiprocess campaign path hits the same golden numbers: worker
    processes run the optimized substrate and must agree with both the
    serial path and the seed recording."""
    from repro.campaign import run_spec

    config = Fig1Config(intervals_s=(INTERVAL_S,), seeds=(1, 2))
    spec = campaign_spec(config)
    outcome = run_spec(spec, workers=2, cache_dir=None,
                       campaign_dir=str(tmp_path / "campaign"))
    assert not outcome.quarantined

    for protocol, series in outcome.results.items():
        samples = series._samples[INTERVAL_S]  # one MetricsSummary per seed
        assert len(samples) == 2
        for seed, summary in zip((1, 2), samples):
            _events, tx, delivered, generated, delay, hops, _air = \
                GOLDEN[(protocol, seed)]
            assert summary.mac_packets == tx
            assert summary.delivered == delivered
            assert summary.generated == generated
            assert summary.avg_delay_s == EXACT(delay)
            assert summary.avg_hops == EXACT(hops)
