"""The experiment registry: builtins, plug-in registration, CLI wiring."""

import warnings

import pytest

import repro.experiments.cli as cli
from repro.experiments import registry
from repro.experiments.registry import ExperimentDef, experiment, register_script


@pytest.fixture
def scratch_name():
    """A registry slot that is guaranteed cleaned up after the test."""
    name = "test-scratch-exp"
    yield name
    registry.unregister(name)


class TestBuiltins:
    def test_all_builtins_registered(self):
        assert set(registry.names()) >= {
            "fig1", "fig2", "fig3", "fig4", "mobility", "scaling", "uav",
            "chaos"}

    def test_campaign_vs_script_split(self):
        capable = set(registry.campaign_capable())
        assert capable == {"fig1", "fig3", "fig4", "mobility", "scaling",
                           "uav"}
        assert not registry.get("fig2").is_campaign
        assert not registry.get("chaos").is_campaign

    def test_build_spec_produces_campaign_spec(self):
        spec = registry.get("fig1").build_spec()
        assert spec.name == "fig1"
        assert spec.protocols == ("counter1", "ssaf")

    def test_script_experiments_refuse_build_spec(self):
        with pytest.raises(TypeError, match="script"):
            registry.get("fig2").build_spec()

    def test_unknown_name_is_none(self):
        assert registry.get("fig99") is None

    def test_panels_and_x_labels_present(self):
        for name in registry.campaign_capable():
            definition = registry.get(name)
            assert definition.panels, name
            assert definition.x_label != "x", name


class TestPlugIn:
    def test_new_experiment_needs_zero_cli_edits(self, scratch_name):
        @experiment(name=scratch_name, description="scratch",
                    panels=("delivery_ratio",), x_label="k")
        def campaign_spec(config=None):  # pragma: no cover - never built
            raise NotImplementedError

        # Registry, CLI subcommand choices and the deprecated EXPERIMENTS
        # table all pick the new experiment up without any CLI change.
        assert scratch_name in registry.names()
        assert scratch_name in registry.campaign_capable()
        parser = cli.build_parser()
        parser.parse_args([scratch_name])  # not a choices error
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            assert scratch_name in cli.EXPERIMENTS

    def test_script_registration(self, scratch_name):
        @register_script(name=scratch_name, description="scratch script")
        def main(argv=None):  # pragma: no cover - never run
            return 0

        assert not registry.get(scratch_name).is_campaign
        assert registry.get(scratch_name).script is main

    def test_unregister_frees_the_slot(self, scratch_name):
        @experiment(name=scratch_name, panels=("delivery_ratio",))
        def spec():  # pragma: no cover - never built
            raise AssertionError
        assert registry.get(scratch_name) is not None
        registry.unregister(scratch_name)
        assert registry.get(scratch_name) is None
        registry.unregister(scratch_name)  # idempotent

    def test_conflicting_reregistration_rejected(self, scratch_name):
        definition = ExperimentDef(name=scratch_name, spec=lambda: None)
        registry._register(definition)
        registry._register(definition)  # identical: idempotent
        with pytest.raises(ValueError, match="already registered"):
            registry._register(
                ExperimentDef(name=scratch_name, spec=lambda: None,
                              description="different"))


class TestCliShim:
    def test_experiments_table_is_deprecated(self):
        with pytest.warns(DeprecationWarning, match="EXPERIMENTS"):
            table = cli.EXPERIMENTS
        assert set(table) == set(registry.campaign_capable())
        runner, panels, x_label = table["fig1"]
        assert callable(runner)
        assert panels == registry.get("fig1").panels
        assert x_label == registry.get("fig1").x_label

    def test_unknown_module_attr_still_raises(self):
        with pytest.raises(AttributeError):
            cli.NO_SUCH_NAME
