"""ExperimentResult: builders, wire format, deprecation shims."""

import warnings

import pytest

from repro.campaign.cache import summary_from_dict, summary_to_dict
from repro.experiments.fig1_ssaf import Fig1Config
from repro.experiments.result import ExperimentResult, config_fingerprint
from repro.stats.metrics import MetricsSummary
from repro.stats.series import SweepSeries

SUMMARY = MetricsSummary(generated=10, delivered=9, delivery_ratio=0.9,
                         avg_delay_s=0.02, avg_hops=3.0, mac_packets=120)


def make_result(**kwargs) -> ExperimentResult:
    defaults = dict(config=Fig1Config(), seed=7, wall_s=1.5)
    defaults.update(kwargs)
    return ExperimentResult.from_summary(SUMMARY, **defaults)


class TestBuilders:
    def test_from_summary_copies_metrics(self):
        result = make_result()
        assert result.metrics["delivery_ratio"] == 0.9
        assert result.seed == 7
        assert result.wall_s == 1.5
        assert result.fingerprint == config_fingerprint(Fig1Config())

    def test_extra_metrics_join(self):
        result = make_result(fault_events=42.0)
        assert result.metrics["fault_events"] == 42.0

    def test_to_summary_round_trip(self):
        assert make_result().to_summary() == SUMMARY

    def test_to_summary_drops_extras(self):
        assert make_result(fault_events=42.0).to_summary() == SUMMARY

    def test_fingerprint_tracks_config(self):
        assert (make_result().fingerprint
                != make_result(config=Fig1Config(n_nodes=61)).fingerprint)

    def test_positional_construction_rejected(self):
        with pytest.raises(TypeError):
            ExperimentResult({"delivery_ratio": 1.0})


class TestEquality:
    def test_wall_clock_excluded_from_equality(self):
        assert make_result(wall_s=1.0) == make_result(wall_s=99.0)

    def test_metrics_included_in_equality(self):
        assert make_result() != make_result(fault_events=1.0)


class TestWire:
    def test_dict_round_trip(self):
        result = make_result()
        clone = ExperimentResult.from_dict(result.to_dict())
        assert clone == result
        assert clone.to_dict()["__kind__"] == "experiment_result"

    def test_cache_serialization_round_trip(self):
        result = make_result()
        assert summary_from_dict(summary_to_dict(result)) == result

    def test_untagged_payload_loads_as_legacy_summary(self):
        # Caches written before ExperimentResult existed must still load.
        loaded = summary_from_dict(summary_to_dict(SUMMARY))
        assert isinstance(loaded, MetricsSummary)
        assert loaded == SUMMARY


class TestDeprecationShim:
    def test_legacy_attribute_access_warns_and_works(self):
        result = make_result()
        with pytest.warns(DeprecationWarning, match="delivery_ratio"):
            assert result.delivery_ratio == 0.9

    def test_missing_attribute_raises_without_warning(self):
        result = make_result()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            with pytest.raises(AttributeError):
                result.not_a_metric

    def test_sweep_series_normalizes_results(self):
        series = SweepSeries("ssaf")
        series.add(1.0, make_result())
        series.add(1.0, SUMMARY)  # mixed shapes accepted
        stats = series.metric(1.0, "delivery_ratio")
        assert stats.n == 2
        assert stats.mean == pytest.approx(0.9)
