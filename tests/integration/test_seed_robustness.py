"""Seed robustness of the headline orderings.

A reproduction whose claims hold only on cherry-picked seeds is not a
reproduction.  These tests run the two headline comparisons over a seed
panel and require the paper's ordering to hold in the clear majority — with
the *averages* over the panel always ordered correctly.
"""

import pytest

from repro.experiments.common import (
    ScenarioConfig,
    attach_cbr,
    build_protocol_network,
    pick_flows,
)
from repro.sim.rng import RandomStreams

SEEDS = (11, 22, 33, 44, 55)


def flooding_hops(protocol, seed):
    net = build_protocol_network(
        protocol, ScenarioConfig(n_nodes=50, width_m=700, height_m=700,
                                 range_m=250, seed=seed))
    flows = pick_flows(50, 8, RandomStreams(seed).stream("sr"),
                       distinct_endpoints=False)
    attach_cbr(net, flows, interval_s=1.0, stop_s=8.0)
    net.run(until=10.0)
    return net.summary().avg_hops


@pytest.mark.slow
def test_ssaf_hop_advantage_across_seeds():
    wins = 0
    ssaf_total = counter_total = 0.0
    for seed in SEEDS:
        ssaf = flooding_hops("ssaf", seed)
        counter1 = flooding_hops("counter1", seed)
        ssaf_total += ssaf
        counter_total += counter1
        if ssaf < counter1:
            wins += 1
    assert wins >= 4, f"SSAF won only {wins}/{len(SEEDS)} seeds"
    assert ssaf_total < counter_total


def routing_cell(protocol, seed, failure):
    from repro.experiments.fig3_rr_vs_aodv import Fig3Config, run_one
    config = Fig3Config(n_nodes=100, terrain_m=900.0, duration_s=20.0)
    return run_one(protocol, 3, seed, config, failure_fraction=failure)


@pytest.mark.slow
def test_rr_failure_resilience_across_seeds():
    wins = 0
    for seed in SEEDS[:3]:
        aodv = routing_cell("aodv", seed, failure=0.10)
        rr = routing_cell("routeless", seed, failure=0.10)
        if rr.delivery_ratio >= aodv.delivery_ratio - 0.01 and \
                rr.mac_packets < aodv.mac_packets:
            wins += 1
    assert wins >= 2, f"RR resilience held on only {wins}/3 seeds"
