"""End-to-end integration: every protocol carries real CBR traffic over a
random multi-hop topology with acceptable delivery."""

import pytest

from repro.experiments.common import (
    ScenarioConfig,
    attach_cbr,
    build_protocol_network,
    pick_flows,
)
from repro.sim.rng import RandomStreams


def run_protocol(protocol, seed=1, n=60, pairs=3, until=20.0, interval=1.0):
    scenario = ScenarioConfig(n_nodes=n, width_m=700, height_m=700,
                              range_m=250, seed=seed)
    net = build_protocol_network(protocol, scenario)
    flows = pick_flows(n, pairs, RandomStreams(seed + 500).stream("e2e"),
                       bidirectional=(protocol in ("routeless", "aodv", "dsr", "dsdv")))
    attach_cbr(net, flows, interval_s=interval, stop_s=until - 4.0)
    net.run(until=until)
    return net


@pytest.mark.parametrize("protocol", ["counter1", "ssaf", "blind", "routeless",
                                      "aodv", "gradient", "dsr", "dsdv",
                                      "geoflood"])
class TestEndToEnd:
    def test_delivers_most_traffic(self, protocol):
        net = run_protocol(protocol)
        summary = net.summary()
        assert summary.generated > 10
        assert summary.delivery_ratio >= 0.85, summary

    def test_delays_are_sane(self, protocol):
        net = run_protocol(protocol)
        summary = net.summary()
        assert 0.0 < summary.avg_delay_s < 2.0

    def test_simulation_quiesces(self, protocol):
        # After traffic stops, the event heap must eventually drain: no
        # protocol may leave self-rescheduling timers running forever.
        # (DSDV is the deliberate exception: its periodic advertisements are
        # the protocol, so it only has to stay *bounded*.)
        net = run_protocol(protocol, until=20.0)
        if protocol == "dsdv":
            before = net.simulator.events_processed
            net.run(until=60.0)
            rate = (net.simulator.events_processed - before) / 40.0
            assert rate < 60 * len(net.protocols)  # background beacons only
        else:
            net.run(until=60.0)
            assert net.simulator.pending == 0

    def test_deterministic_replay(self, protocol):
        a = run_protocol(protocol, seed=7)
        b = run_protocol(protocol, seed=7)
        assert a.summary() == b.summary()
        assert a.simulator.events_processed == b.simulator.events_processed
