"""Miniature versions of the paper's headline claims.

Each test runs a scaled-down experiment and asserts the *qualitative* result
the corresponding figure shows.  The full-size sweeps live in benchmarks/.
"""

import pytest

from repro.experiments.common import (
    ScenarioConfig,
    attach_cbr,
    build_protocol_network,
    pick_flows,
)
from repro.experiments.fig3_rr_vs_aodv import Fig3Config, run_one
from repro.sim.rng import RandomStreams


def flooding_run(protocol, interval_s, seed):
    scenario = ScenarioConfig(n_nodes=50, width_m=700, height_m=700,
                              range_m=250, seed=seed)
    net = build_protocol_network(protocol, scenario)
    flows = pick_flows(50, 8, RandomStreams(seed + 99).stream("f"),
                       distinct_endpoints=False)
    attach_cbr(net, flows, interval_s=interval_s, stop_s=8.0)
    net.run(until=10.0)
    return net.summary()


def averaged(protocol, interval_s, metric, seeds=(1, 2, 3)):
    values = [getattr(flooding_run(protocol, interval_s, s), metric)
              for s in seeds]
    return sum(values) / len(values)


class TestFigure1Claims:
    """SSAF vs counter-1 flooding."""

    def test_ssaf_fewer_hops(self):
        assert averaged("ssaf", 1.0, "avg_hops") < \
            averaged("counter1", 1.0, "avg_hops")

    def test_ssaf_lower_delay(self):
        assert averaged("ssaf", 1.0, "avg_delay_s") < \
            averaged("counter1", 1.0, "avg_delay_s")

    def test_ssaf_delivery_at_least_as_good(self):
        assert averaged("ssaf", 1.0, "delivery_ratio") >= \
            averaged("counter1", 1.0, "delivery_ratio") - 0.02


class TestFigure3Claims:
    """Routeless Routing vs AODV, no failures."""

    CONFIG = Fig3Config(n_nodes=120, terrain_m=1000.0, duration_s=20.0)

    def _avg(self, protocol, metric, failure=0.0, seeds=(1, 2)):
        values = [getattr(run_one(protocol, 3, s, self.CONFIG,
                                  failure_fraction=failure), metric)
                  for s in seeds]
        return sum(values) / len(values)

    def test_both_deliver_nearly_everything(self):
        assert self._avg("routeless", "delivery_ratio") > 0.95
        assert self._avg("aodv", "delivery_ratio") > 0.95

    def test_routeless_has_higher_delay(self):
        # "Routeless Routing takes more time to make the routing decision."
        assert self._avg("routeless", "avg_delay_s") > \
            self._avg("aodv", "avg_delay_s")

    def test_routeless_routes_are_no_longer(self):
        # "packets in Routeless Routing take on average fewer hops"
        assert self._avg("routeless", "avg_hops") <= \
            self._avg("aodv", "avg_hops") + 0.1


class TestFigure4Claims:
    """Routeless Routing vs AODV with transceiver failures."""

    CONFIG = Fig3Config(n_nodes=120, terrain_m=1000.0, duration_s=30.0)

    def _run(self, protocol, failure, seeds=(1, 2)):
        summaries = [run_one(protocol, 3, s, self.CONFIG, failure_fraction=failure)
                     for s in seeds]
        mean = lambda metric: sum(getattr(x, metric) for x in summaries) / len(summaries)
        return mean

    def test_aodv_cost_grows_with_failures(self):
        healthy = self._run("aodv", 0.0)
        failing = self._run("aodv", 0.10)
        assert failing("mac_packets") > 1.4 * healthy("mac_packets")
        assert failing("avg_delay_s") > healthy("avg_delay_s")

    def test_routeless_cost_stays_flat(self):
        healthy = self._run("routeless", 0.0)
        failing = self._run("routeless", 0.10)
        assert failing("mac_packets") < 1.25 * healthy("mac_packets")
        assert failing("avg_delay_s") < 2.0 * healthy("avg_delay_s")

    def test_routeless_delivery_resilient(self):
        failing = self._run("routeless", 0.10)
        assert failing("delivery_ratio") > 0.95

    def test_aodv_uses_more_packets_under_failures(self):
        # The Figure 4 ordering: with failures, AODV's control storms push
        # its MAC packet count above Routeless Routing's.
        aodv = self._run("aodv", 0.10)
        rr = self._run("routeless", 0.10)
        assert aodv("mac_packets") > rr("mac_packets")


class TestFigure2Claim:
    """Congestion avoidance: A→B relays shift off the congested centre."""

    @pytest.mark.slow
    def test_corridor_usage_drops_under_cross_traffic(self):
        from repro.experiments.fig2_congestion import Fig2Config, run_fig2

        # The benchmark-validated parameters (the defaults).
        result = run_fig2(Fig2Config())
        assert result.delivery_alone > 0.3
        assert result.corridor_congested < result.corridor_alone
