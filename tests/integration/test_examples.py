"""Smoke tests: every example script runs to completion and prints its
headline output.  Protects the documentation-by-example from rotting as the
library evolves."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, args: list[str] | None = None, timeout: float = 240.0):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)] + (args or []),
        capture_output=True, text=True, timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "elected leader" in out
        assert "battery" in out

    def test_flooding_comparison(self):
        out = run_example("flooding_comparison.py")
        for protocol in ("blind", "counter1", "ssaf"):
            assert protocol in out

    def test_routeless_routing_demo(self):
        out = run_example("routeless_routing_demo.py")
        assert "seamless takeover" in out or "no route repair" in out
        assert "delivered via relays" in out

    def test_token_mutex(self):
        out = run_example("token_mutex.py")
        assert "mutual exclusion violated:   NO" in out

    def test_span_backbone(self):
        out = run_example("span_backbone.py")
        assert "backbone has formed" in out

    def test_mobility_comparison(self):
        out = run_example("mobility_comparison.py", args=["12"])
        assert "routeless" in out and "aodv" in out

    def test_sensor_sleep(self):
        out = run_example("sensor_sleep.py")
        assert "routeless" in out and "aodv" in out

    def test_sensor_network(self):
        out = run_example("sensor_network.py")
        assert "delivered to the sink" in out
        assert "energy fairness" in out

    def test_congestion_map(self):
        out = run_example("congestion_map.py", timeout=300.0)
        assert "relay activity" in out or "corridor" in out.lower()
