"""Property-based whole-system invariants.

Hypothesis drives randomized small scenarios (topology, protocol, traffic)
through full-stack simulations and asserts properties that must hold for
*every* protocol on *every* topology — the class of bug that example-based
tests miss.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.experiments.common import (
    ScenarioConfig,
    attach_cbr,
    build_protocol_network,
)
from repro.topology.placement import connected_uniform

PROTOCOLS = ["counter1", "ssaf", "blind", "routeless", "aodv", "gradient",
             "dsr", "dsdv", "geoflood"]

DURATION = 8.0


def run_random_scenario(protocol, n_nodes, seed, n_flows):
    rng = np.random.default_rng(seed)
    positions = connected_uniform(n_nodes, 600.0, 600.0, 250.0, rng)
    scenario = ScenarioConfig(n_nodes=n_nodes, positions=positions,
                              range_m=250.0, seed=seed)
    net = build_protocol_network(protocol, scenario)
    flows = []
    for _ in range(n_flows):
        src, dst = rng.choice(n_nodes, size=2, replace=False)
        flows.append((int(src), int(dst)))
    attach_cbr(net, flows, interval_s=1.0, stop_s=DURATION - 3.0)
    net.run(until=DURATION)
    return net


@given(
    protocol=st.sampled_from(PROTOCOLS),
    n_nodes=st.integers(min_value=5, max_value=15),
    seed=st.integers(min_value=0, max_value=10_000),
    n_flows=st.integers(min_value=1, max_value=2),
)
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_universal_invariants(protocol, n_nodes, seed, n_flows):
    net = run_random_scenario(protocol, n_nodes, seed, n_flows)
    metrics = net.metrics
    summary = net.summary()

    # Conservation: you cannot deliver what was never sent.
    assert metrics.delivered <= metrics.generated
    assert 0.0 <= summary.delivery_ratio <= 1.0

    # Anything delivered required at least one transmission.
    if metrics.delivered:
        assert net.channel.tx_count >= metrics.delivered

    for delivery in metrics.deliveries:
        # Causality and sanity of per-packet records.
        assert 0.0 < delivery.delay <= DURATION
        assert 1 <= delivery.hops <= n_nodes
        # Loop freedom: no node relays the same packet twice.
        assert len(delivery.path) == len(set(delivery.path))
        # Endpoints never appear as relays of their own packet.
        assert delivery.origin not in delivery.path
        assert delivery.target not in delivery.path
        # The hop count and the relay record agree.
        assert delivery.hops == len(delivery.path) + 1


@given(
    protocol=st.sampled_from(["routeless", "aodv"]),
    seed=st.integers(min_value=0, max_value=5_000),
)
@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_failure_does_not_break_invariants(protocol, seed):
    """Random transceiver failures must degrade service, never corrupt it."""
    from repro.topology.failures import apply_failures

    rng = np.random.default_rng(seed)
    positions = connected_uniform(12, 600.0, 600.0, 250.0, rng)
    scenario = ScenarioConfig(n_nodes=12, positions=positions, seed=seed)
    net = build_protocol_network(protocol, scenario)
    src, dst = (int(v) for v in rng.choice(12, size=2, replace=False))
    apply_failures(net.ctx, net.radios, 0.2, exempt={src, dst},
                   mean_cycle_s=1.0)
    attach_cbr(net, [(src, dst)], interval_s=0.5, stop_s=5.0)
    net.run(until=8.0)

    assert net.metrics.delivered <= net.metrics.generated
    for delivery in net.metrics.deliveries:
        assert len(delivery.path) == len(set(delivery.path))
        assert delivery.delay > 0
