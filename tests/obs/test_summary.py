"""Tests for the observed-run summary reducer and its CLI rendering."""

import json

from repro.net.packet import PacketKind
from repro.obs.ledger import DropReason
from repro.obs.observe import Observability
from repro.obs.summary import format_summary, summarize


def observed_run() -> Observability:
    obs = Observability()
    uid = (PacketKind.DATA, 0, 0)
    obs.on_originate(0.0, 0, uid)
    obs.on_enqueue(0.0, 0, uid, depth=1)
    obs.on_tx(0.001, 0, uid, "data", 0.002)
    obs.on_tx(0.004, 1, uid, "data", 0.002)
    obs.on_rx(0.003, 1, uid, -55.0)
    obs.on_drop(0.005, 2, "net", DropReason.DUPLICATE, uid)
    obs.on_drop(0.006, 3, "net", DropReason.DUPLICATE, uid)
    obs.on_drop(0.007, 4, "mac", DropReason.QUEUE_OVERFLOW, uid)
    obs.on_deliver(0.008, 5, uid, delay_s=0.008, hops=2)
    obs.on_election_win(0.004, 1, uid, "ssaf", backoff_s=0.003)
    return obs


def test_summarize_shape_and_invariants():
    report = summarize(observed_run())
    assert report["total_drops"] == 3
    assert report["drops_by_reason"] == {"duplicate": 2, "queue_overflow": 1}
    assert sum(report["drops_by_reason"].values()) == report["total_drops"]
    assert report["tx_by_kind"] == {"data": 2.0}
    assert report["airtime_by_kind"]["data"] == 0.004
    assert report["stages"]["deliver"] == 1
    assert report["election_wins"]["ssaf"]["count"] == 1
    assert report["election_wins"]["ssaf"]["mean_backoff_s"] == 0.003


def test_summarize_is_json_safe():
    report = summarize(observed_run())
    assert json.loads(json.dumps(report)) == report


def test_drops_sorted_most_frequent_first():
    report = summarize(observed_run())
    assert list(report["drops_by_reason"]) == ["duplicate", "queue_overflow"]


def test_format_summary_renders_all_sections():
    text = format_summary(summarize(observed_run()))
    assert "drops: 3 total" in text
    assert "duplicate" in text and "queue_overflow" in text
    assert "transmissions by frame kind:" in text
    assert "election-win backoff (ssaf): 1 wins" in text


def test_format_summary_empty_run():
    text = format_summary(summarize(Observability()))
    assert "drops: 0 total" in text
    assert "(none)" in text


def test_link_budget_gauge_keeps_peak_and_renders():
    obs = Observability()
    obs.on_link_budget(12_500_000)
    obs.on_link_budget(37_600_000)
    obs.on_link_budget(1_000)  # later, smaller rebuild: peak must stick
    report = summarize(obs)
    assert report["link_budget_bytes"] == 37_600_000.0
    assert "channel link budget: 37.60 MB peak" in format_summary(report)


def test_link_budget_absent_when_no_channel_reported():
    report = summarize(Observability())
    assert report["link_budget_bytes"] is None
    assert "link budget" not in format_summary(report)
