"""Prometheus exposition: rendering, the strict parser, round-trips."""

from __future__ import annotations

import math

import pytest

from repro.obs.prom import ExpositionError, parse_exposition, render_exposition
from repro.obs.registry import MetricsRegistry


def snapshot_of(build):
    reg = MetricsRegistry()
    build(reg)
    return reg.snapshot()


class TestRender:
    def test_counter_and_gauge_lines(self):
        snap = snapshot_of(lambda r: (
            r.counter("repro_events_total", "Events.", ("kind",))
             .labels("tx").inc(3),
            r.gauge("repro_depth", "Depth.").set(2.5)))
        text = render_exposition(snap)
        assert "# TYPE repro_events_total counter" in text
        assert 'repro_events_total{kind="tx"} 3' in text
        assert "# HELP repro_depth Depth." in text
        assert "repro_depth 2.5" in text

    def test_histogram_cumulative_with_inf(self):
        snap = snapshot_of(lambda r: [
            r.histogram("repro_lat", buckets=(0.1, 1.0)).observe(v)
            for v in (0.05, 0.5, 5.0)])
        text = render_exposition(snap)
        assert 'repro_lat_bucket{le="0.1"} 1' in text
        assert 'repro_lat_bucket{le="1"} 2' in text
        assert 'repro_lat_bucket{le="+Inf"} 3' in text
        assert "repro_lat_count 3" in text
        assert "repro_lat_sum 5.55" in text

    def test_label_value_escaping(self):
        snap = snapshot_of(lambda r: r.counter("c", "", ("p",))
                           .labels('we"ird\\x\n').inc())
        text = render_exposition(snap)
        assert 'p="we\\"ird\\\\x\\n"' in text
        # And the escaped form survives the parser.
        (_name, labels, _v), = parse_exposition(text)["c"]["samples"]
        assert labels["p"] == 'we"ird\\x\n'

    def test_bad_metric_names_sanitized(self):
        snap = snapshot_of(lambda r: r.counter("weird.name-1").inc())
        text = render_exposition(snap)
        assert "weird_name_1 1" in text
        parse_exposition(text)  # sanitized output must be valid


class TestRoundTrip:
    def test_full_registry_roundtrip(self):
        def build(r):
            r.counter("repro_requests_total", "Reqs.", ("route", "status"))\
             .labels("/v1/cells", "200").inc(7)
            r.gauge("repro_inflight", "In flight.").set(2)
            h = r.histogram("repro_wall_seconds", "Wall.", ("lane",),
                            buckets=(0.5, 2.0))
            h.labels("interactive").observe(0.1)
            h.labels("batch").observe(9.0)

        families = parse_exposition(render_exposition(snapshot_of(build)))
        assert families["repro_requests_total"]["type"] == "counter"
        (name, labels, value), = families["repro_requests_total"]["samples"]
        assert (labels, value) == ({"route": "/v1/cells", "status": "200"}, 7)
        hist = families["repro_wall_seconds"]
        assert hist["type"] == "histogram"
        inf_buckets = [(labels["lane"], value)
                       for n, labels, value in hist["samples"]
                       if labels.get("le") == "+Inf"]
        assert sorted(inf_buckets) == [("batch", 1), ("interactive", 1)]


class TestParserStrictness:
    def test_malformed_sample_rejected(self):
        with pytest.raises(ExpositionError, match="malformed sample"):
            parse_exposition("what even is this line\n")

    def test_non_numeric_value_rejected(self):
        with pytest.raises(ExpositionError, match="non-numeric"):
            parse_exposition("ok_name twelve\n")

    def test_malformed_labels_rejected(self):
        with pytest.raises(ExpositionError, match="label"):
            parse_exposition('m{oops} 1\n')

    def test_type_redeclaration_rejected(self):
        text = "# TYPE m counter\n# TYPE m gauge\nm 1\n"
        with pytest.raises(ExpositionError, match="redeclared"):
            parse_exposition(text)

    def test_unknown_type_rejected(self):
        with pytest.raises(ExpositionError, match="unknown type"):
            parse_exposition("# TYPE m sparkline\n")

    def test_histogram_missing_inf_rejected(self):
        text = ("# TYPE h histogram\n"
                'h_bucket{le="1"} 1\nh_sum 0.5\nh_count 1\n')
        with pytest.raises(ExpositionError, match=r"\+Inf"):
            parse_exposition(text)

    def test_inf_and_nan_values_parse(self):
        families = parse_exposition("a +Inf\nb -Inf\nc NaN\n")
        assert families["a"]["samples"][0][2] == math.inf
        assert families["b"]["samples"][0][2] == -math.inf
        assert math.isnan(families["c"]["samples"][0][2])

    def test_comments_and_blanks_ignored(self):
        families = parse_exposition("\n# just a comment\nm 1\n\n")
        assert list(families) == ["m"]
