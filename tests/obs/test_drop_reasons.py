"""Drop-reason accounting across the stack (the satellite acceptance test):
queue-overflow, duplicate-suppression and TTL-expiry paths each leave the
right ledger entry AND the matching metric increment, and per-reason counts
always sum to the run's total drops."""

import json

import pytest

from repro.core.backoff import RandomBackoff
from repro.mac.csma import MacConfig
from repro.mac.queue import DropReason as QueueDropReason
from repro.mac.queue import FifoTxQueue, TxJob
from repro.net.flooding import FloodingConfig
from repro.net.packet import Packet, PacketKind
from repro.obs.ledger import DropReason, PacketStage
from repro.obs.observe import Observability
from repro.sim.components import SimContext
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from tests.conftest import line_network, line_positions, make_mac_stack


def drops_metric(obs: Observability) -> dict[tuple[str, str], float]:
    """``repro_drops_total`` samples as ``{(reason, layer): count}``."""
    samples = obs.registry.get("repro_drops_total").describe()["samples"]
    return {tuple(json.loads(key)): value for key, value in samples.items()}


def assert_reasons_sum_to_total(obs: Observability) -> None:
    counts = obs.ledger.drop_counts()
    assert sum(counts.values()) == obs.ledger.total_drops()
    assert sum(drops_metric(obs).values()) == obs.ledger.total_drops()


class TestQueueOverflow:
    def test_queue_tracks_per_reason_counts(self):
        q = FifoTxQueue(capacity=1)
        assert q.push(TxJob(packet="a", dst=None, size_bytes=64, priority=0))
        assert not q.push(TxJob(packet="b", dst=None, size_bytes=64, priority=0))
        assert q.dropped == 1
        assert q.dropped_overflow == 1
        assert q.dropped_other == 0
        assert q.drops_by_reason == {QueueDropReason.QUEUE_OVERFLOW: 1}

    def test_purge_counts_under_given_reason(self):
        q = FifoTxQueue()
        q.push(TxJob(packet="a", dst=None, size_bytes=64, priority=0))
        purged = q.purge(QueueDropReason.RADIO_OFF)
        assert [j.packet for j in purged] == ["a"]
        assert q.dropped == 1
        assert q.dropped_overflow == 0
        assert q.dropped_other == 1

    def test_mac_overflow_hits_ledger_and_metric(self):
        obs = Observability()
        ctx = SimContext(Simulator(), RandomStreams(1), obs=obs)
        _channel, _radios, macs = make_mac_stack(
            ctx, line_positions(2), mac_config=MacConfig(queue_capacity=1))
        mac = macs[0]
        refused = 0
        for seq in range(4):
            packet = Packet(kind=PacketKind.DATA, origin=0, seq=seq)
            if not mac.send(packet):
                refused += 1
        assert refused > 0
        assert mac.queue.dropped_overflow == refused
        counts = obs.ledger.drop_counts()
        assert counts[DropReason.QUEUE_OVERFLOW] == refused
        assert drops_metric(obs)[("queue_overflow", "mac")] == refused
        # Accepted packets left enqueue entries with a queue-depth detail.
        enqueues = list(obs.ledger.of_stage(PacketStage.ENQUEUE))
        assert enqueues and all("depth" in e.detail for e in enqueues)
        assert_reasons_sum_to_total(obs)


class TestDuplicateSuppression:
    def test_blind_flooding_drops_duplicates(self):
        # On a clique every rebroadcast re-delivers an already-seen packet;
        # blind flooding (no suppression) discards each copy as DUPLICATE.
        obs = Observability()
        net = line_network("blind", n=6, spacing=20.0, obs=obs)
        net.protocols[0].send_data(5)
        net.run(until=5.0)
        counts = obs.ledger.drop_counts()
        assert counts[DropReason.DUPLICATE] > 0
        assert drops_metric(obs)[("duplicate", "net")] == \
            counts[DropReason.DUPLICATE]
        assert_reasons_sum_to_total(obs)

    def test_counter1_suppression_leaves_suppress_entries(self):
        # Counter-based suppression cancels pending rebroadcasts instead of
        # just dropping copies: SUPPRESS stage entries, matching the
        # protocols' own suppression counters.
        obs = Observability()
        net = line_network("counter1", n=8, spacing=20.0, obs=obs)
        net.protocols[0].send_data(7)
        net.run(until=5.0)
        suppressed = sum(p.suppressed for p in net.protocols)
        entries = list(obs.ledger.of_stage(PacketStage.SUPPRESS))
        assert suppressed > 0
        assert len(entries) == suppressed
        assert_reasons_sum_to_total(obs)


class TestTtlExpiry:
    def test_hop_budget_exhaustion_recorded(self):
        obs = Observability()
        config = FloodingConfig(policy=RandomBackoff(max_delay=0.02),
                                suppress_on_duplicate=True, max_hops=2)
        net = line_network("counter1", n=6, protocol_config=config, obs=obs)
        net.protocols[0].send_data(5)
        net.run(until=5.0)
        assert net.metrics.delivered == 0  # needs 5 hops, only 2 allowed
        counts = obs.ledger.drop_counts()
        assert counts[DropReason.TTL_EXPIRED] > 0
        assert drops_metric(obs)[("ttl_expired", "net")] == \
            counts[DropReason.TTL_EXPIRED]
        expired = [e for e in obs.ledger.entries
                   if e.reason is DropReason.TTL_EXPIRED]
        assert all(e.detail["hops"] >= 2 for e in expired)
        assert_reasons_sum_to_total(obs)


class TestDisabledObservability:
    def test_no_obs_means_no_collection_and_no_crash(self):
        net = line_network("counter1", n=5)
        net.protocols[0].send_data(4)
        net.run(until=5.0)
        assert net.metrics.delivered == 1
        assert net.ctx.obs is None and not net.ctx.observing

    def test_disabled_flag_pauses_collection(self):
        obs = Observability()
        obs.enabled = False
        net = line_network("counter1", n=3, obs=obs)
        net.protocols[0].send_data(2)
        net.run(until=5.0)
        assert len(obs.ledger) == 0

    @pytest.mark.parametrize("protocol", ["ssaf", "routeless", "aodv",
                                          "gradient", "dsr", "dsdv"])
    def test_every_protocol_runs_observed(self, protocol):
        """Instrumentation smoke: each protocol's hooks fire without error
        and the invariant holds."""
        obs = Observability()
        net = line_network(protocol, n=4, obs=obs)
        net.protocols[0].send_data(3)
        net.run(until=8.0)
        assert len(obs.ledger) > 0
        assert_reasons_sum_to_total(obs)
