"""Tests for the packet-lifecycle ledger."""

import json

from repro.net.packet import PacketKind
from repro.obs.ledger import DropReason, PacketLedger, PacketStage


UID = (PacketKind.DATA, 3, 0)


def test_chain_collects_one_packets_events_in_order():
    ledger = PacketLedger()
    ledger.record(0.0, 3, "net", PacketStage.ORIGINATE, UID)
    ledger.record(0.1, 3, "mac", PacketStage.ENQUEUE, UID, depth=1)
    ledger.record(0.2, 7, "net", PacketStage.ORIGINATE, (PacketKind.DATA, 7, 0))
    ledger.record(0.3, 5, "net", PacketStage.DELIVER, UID, delay_s=0.3, hops=2)
    chain = ledger.chain(UID)
    assert [e.stage for e in chain] == [PacketStage.ORIGINATE,
                                        PacketStage.ENQUEUE,
                                        PacketStage.DELIVER]
    assert [e.node for e in chain] == [3, 3, 5]


def test_uidless_entries_recorded_but_not_chained():
    ledger = PacketLedger()
    ledger.record(0.0, 1, "phy", PacketStage.TX, None, kind="mac_ack")
    assert len(ledger) == 1
    assert list(ledger.uids()) == []


def test_drop_counts_sum_to_total():
    ledger = PacketLedger()
    ledger.record(0.0, 1, "mac", PacketStage.DROP, UID,
                  DropReason.QUEUE_OVERFLOW)
    ledger.record(0.1, 2, "net", PacketStage.DROP, UID, DropReason.DUPLICATE)
    ledger.record(0.2, 3, "net", PacketStage.DROP, UID, DropReason.DUPLICATE)
    counts = ledger.drop_counts()
    assert counts[DropReason.QUEUE_OVERFLOW] == 1
    assert counts[DropReason.DUPLICATE] == 2
    assert sum(counts.values()) == ledger.total_drops() == 3


def test_stage_counts_and_of_stage():
    ledger = PacketLedger()
    ledger.record(0.0, 1, "net", PacketStage.ORIGINATE, UID)
    ledger.record(0.1, 1, "phy", PacketStage.TX, UID)
    ledger.record(0.2, 2, "phy", PacketStage.RX, UID)
    assert ledger.stage_counts()[PacketStage.TX] == 1
    assert [e.node for e in ledger.of_stage(PacketStage.RX)] == [2]


def test_to_dict_is_json_safe():
    ledger = PacketLedger()
    entry = ledger.record(1.5, 4, "net", PacketStage.DROP, UID,
                          DropReason.TTL_EXPIRED, hops=5)
    row = json.loads(json.dumps(entry.to_dict()))
    assert row["stage"] == "drop"
    assert row["reason"] == "ttl_expired"
    assert row["uid"] == ["data", 3, 0]
    assert row["detail"] == {"hops": 5}


def test_clear_resets_everything():
    ledger = PacketLedger()
    ledger.record(0.0, 1, "net", PacketStage.DROP, UID, DropReason.DUPLICATE)
    ledger.clear()
    assert len(ledger) == 0
    assert ledger.total_drops() == 0
    assert ledger.chain(UID) == []
