"""Tests for the Chrome trace-event / JSONL timeline export."""

import json

from repro.net.packet import PacketKind
from repro.obs.ledger import DropReason, PacketLedger, PacketStage
from repro.obs.timeline import (
    chrome_trace_events,
    to_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.sim.trace import TraceRecord

UID = (PacketKind.DATA, 0, 0)


def small_ledger() -> PacketLedger:
    ledger = PacketLedger()
    ledger.record(0.0, 0, "net", PacketStage.ORIGINATE, UID)
    ledger.record(0.001, 0, "phy", PacketStage.TX, UID, kind="data",
                  duration_s=0.0005)
    ledger.record(0.0015, 1, "phy", PacketStage.RX, UID, power_dbm=-60.0)
    ledger.record(0.002, 1, "net", PacketStage.DROP, UID,
                  DropReason.DUPLICATE)
    return ledger


def by_name(events, name):
    return [e for e in events if e["name"] == name]


def test_tx_with_airtime_is_a_complete_event():
    events = chrome_trace_events(small_ledger())
    (tx,) = by_name(events, "tx")
    assert tx["ph"] == "X"
    assert tx["ts"] == 0.001 * 1e6
    assert tx["dur"] == 0.0005 * 1e6
    assert tx["pid"] == 1  # phy process


def test_drops_carry_reason_in_name_and_args():
    events = chrome_trace_events(small_ledger())
    (drop,) = by_name(events, "drop:duplicate")
    assert drop["ph"] == "i"
    assert drop["args"]["reason"] == "duplicate"
    assert drop["args"]["uid"] == "data:0:0"


def test_metadata_names_layer_processes_and_node_threads():
    events = chrome_trace_events(small_ledger())
    names = {e["pid"]: e["args"]["name"]
             for e in by_name(events, "process_name")}
    assert names[1] == "phy" and names[3] == "net"
    threads = {(e["pid"], e["tid"]): e["args"]["name"]
               for e in by_name(events, "thread_name")}
    assert threads[(1, 0)] == "node 0" and threads[(1, 1)] == "node 1"


def test_trace_records_land_in_trace_process():
    record = TraceRecord(time=0.5, source="mac[7]", kind="backoff",
                         detail={"slots": 3})
    events = chrome_trace_events(PacketLedger(), [record])
    (ev,) = by_name(events, "backoff")
    assert ev["pid"] == 4 and ev["tid"] == 7
    assert ev["cat"] == "mac"
    assert ev["args"] == {"slots": "3"}


def test_written_file_is_perfetto_loadable_json(tmp_path):
    path = tmp_path / "timeline.json"
    write_chrome_trace(small_ledger(), path)
    doc = json.loads(path.read_text())
    assert isinstance(doc["traceEvents"], list) and doc["traceEvents"]
    assert {e["ph"] for e in doc["traceEvents"]} <= {"X", "i", "M"}
    assert all("ts" in e for e in doc["traceEvents"] if e["ph"] != "M")
    assert doc["displayTimeUnit"] == "ms"


def test_to_chrome_trace_matches_event_list():
    ledger = small_ledger()
    assert to_chrome_trace(ledger)["traceEvents"] == chrome_trace_events(ledger)


def test_jsonl_round_trips_every_entry(tmp_path):
    ledger = small_ledger()
    path = tmp_path / "timeline.jsonl"
    write_jsonl(ledger, path)
    rows = [json.loads(line) for line in path.read_text().splitlines()]
    assert len(rows) == len(ledger)
    assert rows[0]["stage"] == "originate"
    assert rows[-1]["reason"] == "duplicate"
