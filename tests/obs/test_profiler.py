"""Sampling profiler: attribution, report shape, probe lifecycle."""

from __future__ import annotations

import time

import pytest

from repro.obs.profiler import StackSampler, profile_call, subsystem_of


class TestSubsystemOf:
    @pytest.mark.parametrize("module, expected", [
        ("repro.phy.propagation", "phy"),
        ("repro.mac.csma", "mac"),
        ("repro.net.ssaf", "net"),
        ("repro.core.flooding", "net"),      # legacy alias folds into net
        ("repro.analysis.series", "stats"),  # analysis folds into stats
        ("repro.sim.engine", "sim"),
        ("repro.obs.registry", "obs"),
        ("repro", "other"),
        ("repro.newpkg.thing", "newpkg"),    # unlisted packages pass through
    ])
    def test_mapping(self, module, expected):
        assert subsystem_of(module) == expected

    @pytest.mark.parametrize("module", ["json", "numpy.core", "reprolike.x"])
    def test_non_repro_modules_are_none(self, module):
        assert subsystem_of(module) is None


def _busy_in_fake_subsystem(deadline_s: float) -> int:
    """Burn CPU with this test module as the innermost frame."""
    count = 0
    end = time.perf_counter() + deadline_s
    while time.perf_counter() < end:
        count += 1
    return count


class TestStackSampler:
    def test_samples_attribute_to_external(self):
        sampler = StackSampler(interval_s=0.001)
        with sampler:
            _busy_in_fake_subsystem(0.2)
        report = sampler.report()
        assert report["samples"] > 10
        # The test module is outside repro.* → external bucket.
        assert "external" in report["subsystems"]
        assert report["subsystems"]["external"]["fraction"] > 0.5

    def test_samples_attribute_to_repro_subsystem(self):
        # Each quantiles_from_sample call walks 20k buckets in Python, so
        # nearly every sample lands inside repro.obs.registry → "obs".
        from repro.obs.registry import quantiles_from_sample
        sample = {"buckets": list(range(1, 20001)),
                  "counts": [1] * 20001, "sum": 1.0, "count": 20001}
        sampler = StackSampler(interval_s=0.001)
        with sampler:
            end = time.perf_counter() + 0.25
            while time.perf_counter() < end:
                quantiles_from_sample(sample, (0.99,))
        report = sampler.report()
        assert report["subsystems"].get("obs", {}).get("samples", 0) > 0
        assert any(spot["subsystem"] == "obs"
                   for spot in report["hotspots"])

    def test_report_shape(self):
        sampler = StackSampler(interval_s=0.001)
        with sampler:
            _busy_in_fake_subsystem(0.05)
        report = sampler.report(top=5)
        assert report["schema"] == 1
        assert report["interval_s"] == 0.001
        assert report["elapsed_s"] > 0
        assert len(report["hotspots"]) <= 5
        for spot in report["hotspots"]:
            assert set(spot) == {"function", "subsystem", "samples",
                                 "fraction"}
        assert sum(e["samples"] for e in report["subsystems"].values()) \
            == report["samples"]

    def test_fractions_sum_to_one(self):
        sampler = StackSampler(interval_s=0.001)
        with sampler:
            _busy_in_fake_subsystem(0.1)
        report = sampler.report()
        total = sum(e["fraction"] for e in report["subsystems"].values())
        assert total == pytest.approx(1.0)

    def test_double_start_rejected(self):
        sampler = StackSampler(interval_s=0.01)
        sampler.start()
        try:
            with pytest.raises(RuntimeError):
                sampler.start()
        finally:
            sampler.stop()

    def test_stop_idempotent(self):
        sampler = StackSampler(interval_s=0.01)
        sampler.start()
        sampler.stop()
        sampler.stop()

    def test_bad_interval_rejected(self):
        with pytest.raises(ValueError):
            StackSampler(interval_s=0.0)


class TestProfileCall:
    def test_returns_result_and_report(self):
        result, report = profile_call(_busy_in_fake_subsystem, 0.05,
                                      interval_s=0.001)
        assert result > 0
        assert report["samples"] >= 1

    def test_empty_report_when_too_fast(self):
        _result, report = profile_call(lambda: 42, interval_s=0.5)
        assert report["samples"] == 0
        assert report["subsystems"] == {} and report["hotspots"] == []
