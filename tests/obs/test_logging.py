"""Structured logging: levels, formats, binding, zero-cost default."""

from __future__ import annotations

import io
import json

import pytest

from repro.obs import logging as obslog


@pytest.fixture(autouse=True)
def _reset_logging():
    """Logging config is process-wide; leave it disabled after each test."""
    yield
    obslog.configure("off")
    obslog._CONFIG.json_mode = False
    obslog._CONFIG.stream = None


def capture(level="info", json_mode=True):
    stream = io.StringIO()
    obslog.configure(level, json_mode=json_mode, stream=stream)
    return stream


def records(stream) -> list[dict]:
    return [json.loads(line) for line in stream.getvalue().splitlines()]


class TestConfigure:
    def test_disabled_by_default(self):
        assert not obslog.is_configured()
        # Must not raise or write anywhere even with no stream configured.
        obslog.get_logger("t").info("event", detail=1)

    def test_off_disables(self):
        stream = capture()
        obslog.configure("off")
        obslog.get_logger("t").error("boom")
        assert stream.getvalue() == ""
        assert not obslog.is_configured()

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError, match="unknown log level"):
            obslog.configure("loud")


class TestEmission:
    def test_json_record_fields(self):
        stream = capture()
        obslog.get_logger("serve.http").info(
            "request", trace_id="ab" * 16, method="POST", status=202)
        (record,) = records(stream)
        assert record["logger"] == "serve.http"
        assert record["event"] == "request"
        assert record["trace_id"] == "ab" * 16
        assert record["method"] == "POST" and record["status"] == 202
        assert record["level"] == "info" and record["ts"] > 0

    def test_level_threshold_filters(self):
        stream = capture(level="warning")
        log = obslog.get_logger("t")
        log.debug("d")
        log.info("i")
        log.warning("w")
        log.error("e")
        assert [r["event"] for r in records(stream)] == ["w", "e"]

    def test_text_mode_renders_one_line(self):
        stream = capture(json_mode=False)
        obslog.get_logger("campaign").info("cell_settled", cell="a/x=1",
                                           wall_s=0.25)
        line = stream.getvalue()
        assert line.count("\n") == 1
        assert "INFO" in line and "campaign cell_settled" in line
        assert "cell=a/x=1" in line and "wall_s=0.25" in line

    def test_text_mode_omits_none_fields(self):
        stream = capture(json_mode=False)
        obslog.get_logger("t").info("e", skipped=None, kept=1)
        assert "skipped" not in stream.getvalue()
        assert "kept=1" in stream.getvalue()

    def test_bind_attaches_fields(self):
        stream = capture()
        log = obslog.get_logger("campaign").bind(campaign="fig1")
        log.info("cell_settled", cell="ssaf/x=1")
        (record,) = records(stream)
        assert record["campaign"] == "fig1" and record["cell"] == "ssaf/x=1"

    def test_bind_does_not_mutate_parent(self):
        stream = capture()
        parent = obslog.get_logger("t")
        parent.bind(lane="batch")
        parent.info("e")
        (record,) = records(stream)
        assert "lane" not in record

    def test_closed_stream_swallowed(self):
        stream = capture()
        stream.close()
        obslog.get_logger("t").info("e")  # must not raise

    def test_non_json_safe_fields_stringified(self):
        stream = capture()
        obslog.get_logger("t").info("e", err=ValueError("x"))
        (record,) = records(stream)
        assert "x" in record["err"]


def test_get_logger_memoized():
    assert obslog.get_logger("same") is obslog.get_logger("same")
