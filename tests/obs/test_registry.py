"""Tests for the labeled metrics primitives and snapshot/merge APIs."""

import json

import pytest

from repro.obs.registry import (
    Counter,
    Histogram,
    MetricsRegistry,
    merge_snapshots,
)


class TestCounter:
    def test_inc_accumulates(self):
        c = Counter("c")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_negative_inc_rejected(self):
        with pytest.raises(ValueError):
            Counter("c").inc(-1)

    def test_labeled_children_are_memoized(self):
        c = Counter("c", labelnames=("reason",))
        child = c.labels("overflow")
        child.inc()
        assert c.labels("overflow") is child
        assert c.labels("overflow").value == 1.0
        assert c.labels("other").value == 0.0

    def test_keyword_labels(self):
        c = Counter("c", labelnames=("stage", "layer"))
        c.labels(stage="tx", layer="phy").inc()
        assert c.labels("tx", "phy").value == 1.0

    def test_wrong_label_arity_rejected(self):
        c = Counter("c", labelnames=("a", "b"))
        with pytest.raises(ValueError):
            c.labels("only-one")


class TestGauge:
    def test_set_max_is_high_watermark(self):
        g = MetricsRegistry().gauge("g")
        g.set_max(5)
        g.set_max(3)
        assert g.value == 5.0

    def test_inc_dec(self):
        g = MetricsRegistry().gauge("g")
        g.inc(2)
        g.dec(0.5)
        assert g.value == 1.5


class TestHistogram:
    def test_bucket_placement(self):
        h = Histogram("h", buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 3.0, 100.0):
            h.observe(v)
        assert h.counts == [1, 1, 1, 1]  # one per bucket + overflow
        assert h.count == 4
        assert h.sum == pytest.approx(105.0)

    def test_needs_buckets(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=())


class TestRegistry:
    def test_reregistration_returns_same_family(self):
        reg = MetricsRegistry()
        a = reg.counter("x", labelnames=("l",))
        b = reg.counter("x", labelnames=("l",))
        assert a is b

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")

    def test_label_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x", labelnames=("a",))
        with pytest.raises(ValueError):
            reg.counter("x", labelnames=("b",))

    def test_snapshot_is_json_safe(self):
        reg = MetricsRegistry()
        reg.counter("c", labelnames=("k",)).labels("v").inc()
        reg.gauge("g").set(2.0)
        reg.histogram("h").observe(0.01)
        snap = reg.snapshot()
        assert json.loads(json.dumps(snap)) == snap


class TestMerge:
    def build(self, inc_a: float, peak: float, delays: list[float]) -> dict:
        reg = MetricsRegistry()
        reg.counter("drops", labelnames=("reason",)).labels("a").inc(inc_a)
        reg.gauge("peak").set_max(peak)
        h = reg.histogram("delay", buckets=(0.1, 1.0))
        for d in delays:
            h.observe(d)
        return reg.snapshot()

    def test_counters_add_gauges_max_histograms_add(self):
        merged = merge_snapshots([
            self.build(2, 5, [0.05]),
            self.build(3, 4, [0.5, 2.0]),
        ])
        drops = merged["drops"]["samples"]
        assert drops[json.dumps(["a"])] == 5.0
        assert merged["peak"]["samples"][json.dumps([])] == 5.0
        hist = merged["delay"]["samples"][json.dumps([])]
        assert hist["counts"] == [1, 1, 1]
        assert hist["count"] == 3

    def test_merge_creates_missing_families(self):
        reg = MetricsRegistry()
        reg.merge_snapshot(self.build(1, 1, [0.05]))
        assert "drops" in reg and "peak" in reg and "delay" in reg

    def test_merge_is_order_insensitive_for_counters(self):
        snaps = [self.build(i, 0, []) for i in (1, 2, 3)]
        forward = merge_snapshots(snaps)
        backward = merge_snapshots(reversed(snaps))
        assert forward == backward

    def test_parallel_workers_equal_single_registry(self):
        """N per-worker registries merged == one registry fed everything —
        the invariant campaign-level obs folding relies on."""
        events = [("a", 1), ("b", 2), ("a", 3), ("c", 1), ("b", 5)]

        combined = MetricsRegistry()
        family = combined.counter("e", labelnames=("k",))
        for key, amount in events:
            family.labels(key).inc(amount)

        workers = []
        for shard in (events[0::2], events[1::2]):
            reg = MetricsRegistry()
            fam = reg.counter("e", labelnames=("k",))
            for key, amount in shard:
                fam.labels(key).inc(amount)
            workers.append(reg.snapshot())

        assert merge_snapshots(workers) == combined.snapshot()

    def test_bucket_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.histogram("delay", buckets=(0.1, 1.0)).observe(0.05)
        other = MetricsRegistry()
        other.histogram("delay", buckets=(0.2, 2.0)).observe(0.05)
        with pytest.raises(ValueError):
            reg.merge_snapshot(other.snapshot())

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().merge_snapshot({"x": {"kind": "mystery",
                                                    "samples": {}}})


class TestQuantiles:
    def hist(self, values, buckets=(1.0, 2.0, 4.0)):
        h = Histogram("h", buckets=buckets)
        for v in values:
            h.observe(v)
        return h

    def test_empty_histogram_maps_to_none(self):
        assert self.hist([]).quantiles() == {0.5: None, 0.9: None, 0.99: None}

    def test_interpolates_within_bucket(self):
        # 10 observations all in (1, 2]: p50 rank 5 of 10 → halfway through
        # the bucket's span.
        h = self.hist([1.5] * 10)
        assert h.quantiles((0.5,))[0.5] == pytest.approx(1.5)
        assert h.quantiles((1.0,))[1.0] == pytest.approx(2.0)

    def test_first_bucket_lower_edge_is_zero(self):
        h = self.hist([0.5] * 4)
        assert h.quantiles((0.5,))[0.5] == pytest.approx(0.5)

    def test_overflow_reports_highest_finite_bound(self):
        h = self.hist([10.0, 20.0, 30.0])
        assert h.quantiles((0.9,))[0.9] == 4.0

    def test_monotone_across_buckets(self):
        h = self.hist([0.5, 1.5, 1.6, 3.0, 3.5, 8.0])
        estimates = h.quantiles((0.1, 0.5, 0.9))
        assert estimates[0.1] <= estimates[0.5] <= estimates[0.9]

    def test_quantile_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            self.hist([1.0]).quantiles((1.5,))
        with pytest.raises(ValueError):
            self.hist([1.0]).quantiles((-0.1,))

    def test_snapshot_sample_form_accepted(self):
        from repro.obs.registry import quantiles_from_sample
        sample = self.hist([0.5, 1.5, 2.5])._own_sample()
        direct = quantiles_from_sample(sample, (0.5,))
        assert direct == self.hist([0.5, 1.5, 2.5]).quantiles((0.5,))


class TestMergeDisjointLabels:
    def snap(self, pairs, delays=()):
        reg = MetricsRegistry()
        c = reg.counter("drops", labelnames=("reason",))
        for reason, n in pairs:
            c.labels(reason).inc(n)
        h = reg.histogram("delay", labelnames=("proto",), buckets=(0.1, 1.0))
        for proto, value in delays:
            h.labels(proto).observe(value)
        return reg.snapshot()

    def test_disjoint_counter_label_sets_union(self):
        merged = merge_snapshots([
            self.snap([("collision", 2)]),
            self.snap([("ttl", 5)]),
            self.snap([("collision", 1), ("noise", 4)]),
        ])
        samples = merged["drops"]["samples"]
        assert samples[json.dumps(["collision"])] == 3.0
        assert samples[json.dumps(["ttl"])] == 5.0
        assert samples[json.dumps(["noise"])] == 4.0
        assert len(samples) == 3

    def test_disjoint_histogram_children_merge_buckets(self):
        merged = merge_snapshots([
            self.snap([], delays=[("ssaf", 0.05), ("ssaf", 0.5)]),
            self.snap([], delays=[("flood", 5.0)]),
            self.snap([], delays=[("ssaf", 0.07)]),
        ])
        samples = merged["delay"]["samples"]
        ssaf = samples[json.dumps(["ssaf"])]
        assert ssaf["counts"] == [2, 1, 0]
        assert ssaf["count"] == 3
        assert ssaf["sum"] == pytest.approx(0.62)
        flood = samples[json.dumps(["flood"])]
        assert flood["counts"] == [0, 0, 1]

    def test_merged_histogram_quantiles_usable(self):
        from repro.obs.registry import quantiles_from_sample
        merged = merge_snapshots([
            self.snap([], delays=[("ssaf", 0.05)] * 9),
            self.snap([], delays=[("ssaf", 0.5)]),
        ])
        sample = merged["delay"]["samples"][json.dumps(["ssaf"])]
        estimates = quantiles_from_sample(sample, (0.5, 0.99))
        assert estimates[0.5] <= 0.1
        assert 0.1 <= estimates[0.99] <= 1.0
