"""Span tracing: ids, the sink, and the Chrome trace export."""

from __future__ import annotations

import threading

import pytest

from repro.obs.spans import (
    Span,
    SpanSink,
    new_span_id,
    new_trace_id,
    spans_to_chrome_events,
    spans_to_chrome_trace,
    valid_trace_id,
)


class TestIds:
    def test_trace_id_shape(self):
        tid = new_trace_id()
        assert len(tid) == 32 and valid_trace_id(tid)

    def test_span_id_shape(self):
        assert len(new_span_id()) == 16

    def test_ids_are_unique(self):
        assert len({new_trace_id() for _ in range(64)}) == 64

    @pytest.mark.parametrize("bad", [
        "", "short", "g" * 16, "a" * 65, "deadbeef cafe", 123, None,
    ])
    def test_invalid_trace_ids_rejected(self, bad):
        assert not valid_trace_id(bad)

    def test_uppercase_hex_accepted(self):
        assert valid_trace_id("DEADBEEF" * 2)


class TestSpan:
    def test_finish_records_to_sink(self):
        sink = SpanSink()
        span = Span("work", trace_id="ab" * 16)
        span.finish(sink, ok=True)
        assert sink.spans() == [span]
        assert span.end_s >= span.start_s
        assert span.attrs == {"ok": True}

    def test_explicit_interval(self):
        span = Span("wait", trace_id="ab" * 16, start_s=100.0)
        span.finish(end_s=102.5)
        assert span.duration_s == pytest.approx(2.5)

    def test_to_dict_roundtrips_fields(self):
        span = Span("x", trace_id="cd" * 16, parent_id="p" * 16,
                    category="executor", attrs={"lane": "batch"})
        span.finish()
        d = span.to_dict()
        assert d["name"] == "x" and d["category"] == "executor"
        assert d["parent_id"] == "p" * 16 and d["attrs"] == {"lane": "batch"}


class TestSpanSink:
    def test_bounded_fifo(self):
        sink = SpanSink(capacity=3)
        spans = [Span(f"s{i}", trace_id="ab" * 16).finish(sink)
                 for i in range(5)]
        assert sink.spans() == spans[2:]
        assert sink.recorded == 5 and len(sink) == 3

    def test_for_trace_filters(self):
        sink = SpanSink()
        mine = Span("a", trace_id="11" * 16).finish(sink)
        Span("b", trace_id="22" * 16).finish(sink)
        assert sink.for_trace("11" * 16) == [mine]
        assert sink.for_trace("33" * 16) == []

    def test_concurrent_recording(self):
        sink = SpanSink()

        def record(n):
            for _ in range(200):
                Span("w", trace_id=f"{n}{n}" * 16).finish(sink)

        threads = [threading.Thread(target=record, args=(i,))
                   for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sink.recorded == 800


class TestChromeExport:
    def _spans(self):
        tid = "ab" * 16
        parent = Span("http.request", trace_id=tid, start_s=10.0)
        parent.finish(end_s=11.0)
        child = Span("sim.run", trace_id=tid, parent_id=parent.span_id,
                     category="sim", start_s=10.2)
        child.finish(end_s=10.8)
        return [parent, child]

    def test_events_normalized_to_earliest_start(self):
        events = spans_to_chrome_events(self._spans())
        complete = [e for e in events if e.get("ph") == "X"]
        assert min(e["ts"] for e in complete) == 0.0
        sim = next(e for e in complete if e["name"] == "sim.run")
        assert sim["ts"] == pytest.approx(0.2e6)
        assert sim["dur"] == pytest.approx(0.6e6)

    def test_category_process_rows_and_metadata(self):
        events = spans_to_chrome_events(self._spans())
        pids = {e["pid"] for e in events if e.get("ph") == "X"}
        assert pids == {9, 11}  # serve and sim rows
        meta_names = {e["args"]["name"] for e in events
                      if e["name"] == "process_name"}
        assert meta_names == {"serve", "sim"}

    def test_parent_id_carried_in_args(self):
        events = spans_to_chrome_events(self._spans())
        sim = next(e for e in events if e["name"] == "sim.run")
        assert sim["args"]["parent_id"]
        assert sim["args"]["trace_id"] == "ab" * 16

    def test_unfinished_spans_excluded(self):
        open_span = Span("open", trace_id="ab" * 16)
        assert spans_to_chrome_events([open_span]) == []

    def test_full_trace_object(self):
        trace = spans_to_chrome_trace(self._spans())
        assert trace["displayTimeUnit"] == "ms"
        assert len([e for e in trace["traceEvents"]
                    if e.get("ph") == "X"]) == 2
