"""Tests for location-based (oracle) flooding."""

import numpy as np
import pytest

from repro.core.backoff import BackoffInput
from repro.net.geoflood import LocationBackoff
from tests.conftest import line_network


class TestLocationBackoff:
    POLICY = LocationBackoff(lam=0.05, range_m=250.0, jitter=0.0)

    def test_farther_is_faster(self):
        rng = np.random.default_rng(0)
        near = self.POLICY.delay(BackoffInput(rng=rng, metric=50.0))
        far = self.POLICY.delay(BackoffInput(rng=rng, metric=240.0))
        assert far < near

    def test_edge_of_range_zero_delay(self):
        rng = np.random.default_rng(0)
        assert self.POLICY.delay(BackoffInput(rng=rng, metric=250.0)) == pytest.approx(0.0)

    def test_beyond_range_clamped(self):
        rng = np.random.default_rng(0)
        assert self.POLICY.delay(BackoffInput(rng=rng, metric=400.0)) == pytest.approx(0.0)

    def test_requires_metric(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            self.POLICY.delay(BackoffInput(rng=rng))

    def test_validation(self):
        with pytest.raises(ValueError):
            LocationBackoff(lam=0.0)
        with pytest.raises(ValueError):
            LocationBackoff(range_m=-1.0)


class TestLocationFlooding:
    def test_delivers_on_line(self):
        net = line_network("geoflood", n=5)
        net.protocols[0].send_data(4)
        net.run(until=5.0)
        assert net.metrics.delivered == 1

    def test_farthest_neighbor_elected(self):
        from repro.experiments.common import ScenarioConfig, build_protocol_network
        positions = np.array([[0.0, 0.0], [100.0, 0.0], [200.0, 0.0], [400.0, 0.0]])
        net = build_protocol_network(
            "geoflood", ScenarioConfig(n_nodes=4, positions=positions,
                                       range_m=250.0, seed=1))
        net.protocols[0].send_data(3)
        net.run(until=5.0)
        assert net.metrics.deliveries[0].path == (2,)

    def test_oracle_at_least_as_short_as_ssaf_under_free_space(self):
        # Under free space, signal strength IS distance: the oracle and SSAF
        # should produce near-identical hop counts.
        from repro.experiments.common import (
            ScenarioConfig, attach_cbr, build_protocol_network, pick_flows)
        from repro.sim.rng import RandomStreams

        hops = {}
        for protocol in ("geoflood", "ssaf", "counter1"):
            total, count = 0.0, 0
            for seed in (1, 2, 3):
                net = build_protocol_network(
                    protocol, ScenarioConfig(n_nodes=50, width_m=700,
                                             height_m=700, seed=seed))
                flows = pick_flows(50, 6, RandomStreams(seed).stream("g"),
                                   distinct_endpoints=False)
                attach_cbr(net, flows, interval_s=1.0, stop_s=8.0)
                net.run(until=10.0)
                total += sum(d.hops for d in net.metrics.deliveries)
                count += len(net.metrics.deliveries)
            hops[protocol] = total / count
        assert hops["geoflood"] <= hops["counter1"]
        assert abs(hops["geoflood"] - hops["ssaf"]) < 0.35
