"""Tests for Routeless Routing: the table, discovery, relay election,
arbitration, acknowledgement scoping and failure takeover."""

import numpy as np
import pytest

from repro.net.packet import PacketKind
from repro.net.routeless import ActiveNodeTable, RelayPhase, RoutelessConfig
from repro.sim.trace import Tracer
from tests.conftest import line_network, line_positions


class TestActiveNodeTable:
    def test_unknown_target(self):
        table = ActiveNodeTable()
        assert table.hops_to(5) is None
        assert not table.knows(5)

    def test_update_and_query(self):
        table = ActiveNodeTable()
        assert table.update(5, 3, now=0.0)
        assert table.hops_to(5) == 3

    def test_better_distance_always_accepted(self):
        table = ActiveNodeTable()
        table.update(5, 3, now=0.0)
        assert table.update(5, 2, now=0.1)
        assert table.hops_to(5) == 2

    def test_equal_distance_accepted_as_refresh(self):
        table = ActiveNodeTable()
        table.update(5, 3, now=0.0)
        assert table.update(5, 3, now=1.0)

    def test_worse_distance_rejected_while_fresh(self):
        table = ActiveNodeTable(stale_after=10.0)
        table.update(5, 3, now=0.0)
        assert not table.update(5, 7, now=1.0)
        assert table.hops_to(5) == 3

    def test_worse_distance_accepted_once_stale(self):
        table = ActiveNodeTable(stale_after=10.0)
        table.update(5, 3, now=0.0)
        assert table.update(5, 7, now=20.0)
        assert table.hops_to(5) == 7

    def test_negative_hops_rejected(self):
        with pytest.raises(ValueError):
            ActiveNodeTable().update(1, -1, now=0.0)

    def test_len_counts_targets(self):
        table = ActiveNodeTable()
        table.update(1, 1, 0.0)
        table.update(2, 2, 0.0)
        table.update(1, 1, 0.0)
        assert len(table) == 2


class TestPathDiscovery:
    def test_tables_populated_by_discovery_flood(self):
        net = line_network("routeless", n=5)
        net.protocols[0].send_data(4)
        net.run(until=5.0)
        # After the flood, every node knows its true distance to the source.
        for i in range(1, 5):
            assert net.protocols[i].table.hops_to(0) == i

    def test_reply_teaches_distance_to_destination(self):
        net = line_network("routeless", n=5)
        net.protocols[0].send_data(4)
        net.run(until=5.0)
        # The reply traveled 4→3→2→1→0; relays on the corridor learned their
        # distance to the destination.
        for i in range(4):
            assert net.protocols[i].table.hops_to(4) == 4 - i

    def test_data_delivered_after_discovery(self):
        net = line_network("routeless", n=5)
        net.protocols[0].send_data(4)
        net.run(until=5.0)
        assert net.metrics.delivered == 1
        assert net.metrics.deliveries[0].hops == 4

    def test_subsequent_packets_skip_discovery(self):
        net = line_network("routeless", n=4)
        net.protocols[0].send_data(3)
        net.run(until=5.0)
        discoveries_before = net.channel.tx_count_by_kind["path_discovery"]
        net.protocols[0].send_data(3)
        net.run(until=10.0)
        assert net.channel.tx_count_by_kind["path_discovery"] == discoveries_before
        assert net.metrics.delivered == 2

    def test_discovery_to_unreachable_target_gives_up(self):
        config = RoutelessConfig(discovery_timeout_s=0.3, max_discovery_retries=2)
        net = line_network("routeless", n=3, spacing=2000.0,
                           protocol_config=config)
        net.protocols[0].send_data(2)
        net.run(until=10.0)
        assert net.metrics.delivered == 0
        assert net.protocols[0].data_dropped == 1
        # original + 2 retries
        assert net.channel.tx_count_by_kind["path_discovery"] == 3

    def test_destination_replies_once_per_discovery(self):
        net = line_network("routeless", n=4)
        net.protocols[0].send_data(3)
        net.run(until=5.0)
        # One reply origination reached the source; a duplicate reply would
        # have produced a second uid.
        reply_uids = {u for u in net.protocols[0].dup_cache._seen
                      if u[0] == PacketKind.PATH_REPLY}
        assert len(reply_uids) == 1


class TestRelayElection:
    def test_per_hop_acks_flow(self):
        net = line_network("routeless", n=4)
        net.protocols[0].send_data(3)
        net.run(until=5.0)
        # Reply path (3 hops) + data path (3 hops) each acked per hop-ish;
        # at minimum the target and each relay arbiter acked once.
        assert net.channel.tx_count_by_kind["net_ack"] >= 4

    def test_expected_hops_decreases_along_chain(self):
        tracer = Tracer(kinds={"rr.relay"})
        net = line_network("routeless", n=5, tracer=tracer)
        net.protocols[0].send_data(4)
        net.run(until=5.0)
        import re
        levels = [int(re.search(r"eh=(\d+)", r.detail["packet"]).group(1))
                  for r in tracer.records if "data(" in r.detail["packet"]]
        assert levels == sorted(levels, reverse=True)

    def test_relay_state_machine_reaches_done(self):
        net = line_network("routeless", n=4)
        net.protocols[0].send_data(3)
        net.run(until=5.0)
        for protocol in net.protocols:
            for state in protocol._states.values():
                assert state.phase in (RelayPhase.DONE, RelayPhase.SUPPRESSED)

    def test_no_arbiter_gave_up_on_clean_line(self):
        net = line_network("routeless", n=5)
        net.protocols[0].send_data(4)
        net.run(until=5.0)
        assert sum(p.gave_up for p in net.protocols) == 0


class TestFailureResilience:
    def test_relay_failure_triggers_takeover(self):
        """The headline Section 4.2 claim: kill a node on the route and the
        packet still gets through, with no discovery re-flood."""
        # Two parallel relays: either 1a (id 1) or 1b (id 2) can carry
        # 0 → 3.  Kill whichever relayed the first packet; the second packet
        # must go through the other.
        positions = np.array([
            [0.0, 0.0],      # 0: source
            [200.0, 60.0],   # 1: relay a
            [200.0, -60.0],  # 2: relay b
            [400.0, 0.0],    # 3: destination
        ])
        from repro.experiments.common import ScenarioConfig, build_protocol_network
        net = build_protocol_network(
            "routeless",
            ScenarioConfig(n_nodes=4, positions=positions, range_m=250.0, seed=3))
        net.protocols[0].send_data(3)
        net.run(until=3.0)
        assert net.metrics.delivered == 1
        first_relay = net.metrics.deliveries[0].path[0]
        assert first_relay in (1, 2)

        discoveries = net.channel.tx_count_by_kind["path_discovery"]
        net.radios[first_relay].set_power(False)
        net.protocols[0].send_data(3)
        net.run(until=8.0)
        assert net.metrics.delivered == 2
        other = 1 if first_relay == 2 else 2
        assert net.metrics.deliveries[1].path == (other,)
        # Seamless: no new discovery flood was needed.
        assert net.channel.tx_count_by_kind["path_discovery"] == discoveries

    def test_arbiter_retransmits_when_all_relays_dead(self):
        # 0 — 1 — 2: kill node 1; node 0's data cannot progress, the source
        # retransmits as arbiter and finally gives up.
        config = RoutelessConfig(arbiter_timeout_s=0.1, max_relay_retries=2)
        net = line_network("routeless", n=3, protocol_config=config)
        net.protocols[0].send_data(2)
        net.run(until=3.0)
        assert net.metrics.delivered == 1

        net.radios[1].set_power(False)
        net.protocols[0].send_data(2)
        net.run(until=8.0)
        assert net.metrics.delivered == 1  # nobody could relay
        assert sum(p.gave_up for p in net.protocols) >= 1
        assert sum(p.arbiter_retransmits for p in net.protocols) >= 1

    def test_revived_relay_serves_retransmission(self):
        # Node 1 is down when the data first goes out but revives before the
        # source's arbiter retries are exhausted: delivery succeeds late.
        config = RoutelessConfig(arbiter_timeout_s=0.2, max_relay_retries=5)
        net = line_network("routeless", n=3, protocol_config=config)
        net.protocols[0].send_data(2)
        net.run(until=3.0)  # discovery + first packet through node 1
        net.radios[1].set_power(False)
        net.protocols[0].send_data(2)
        net.simulator.schedule(0.35, net.radios[1].set_power, True)
        net.run(until=10.0)
        assert net.metrics.delivered == 2


class TestExpectedHopCeiling:
    def test_unknown_relay_does_not_inflate_expectation(self):
        # A node with no table entry for the target forwards with the chain's
        # expectation minus one, never more.
        tracer = Tracer(kinds={"rr.relay"})
        net = line_network("routeless", n=5, tracer=tracer)
        net.protocols[0].send_data(4)
        net.run(until=5.0)
        import re
        for r in tracer.records:
            match = re.search(r"ah=(\d+) eh=(\d+)", r.detail["packet"])
            hops, expected = int(match.group(1)), int(match.group(2))
            assert hops + expected <= 5  # never worse than the true diameter
