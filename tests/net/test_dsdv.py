"""Tests for the DSDV baseline."""

import pytest

from repro.net.dsdv import INFINITY, DsdvConfig
from tests.conftest import line_network


def settle(net, until=12.0):
    """Let a few update periods elapse so tables converge."""
    net.run(until=until)


class TestConvergence:
    def test_tables_converge_to_true_distances(self):
        net = line_network("dsdv", n=5)
        settle(net)
        for i in range(5):
            for j in range(5):
                if i == j:
                    continue
                route = net.protocols[i].routes.get(j)
                assert route is not None and route.valid, (i, j)
                assert route.hops == abs(i - j)

    def test_next_hops_point_the_right_way(self):
        net = line_network("dsdv", n=4)
        settle(net)
        assert net.protocols[0].routes[3].next_hop == 1
        assert net.protocols[3].routes[0].next_hop == 2

    def test_data_flows_without_any_discovery(self):
        net = line_network("dsdv", n=5)
        settle(net)
        net.protocols[0].send_data(4)
        net.run(until=net.simulator.now + 2.0)
        assert net.metrics.delivered == 1
        assert net.metrics.deliveries[0].hops == 4
        assert net.channel.tx_count_by_kind.get("rreq", 0) == 0

    def test_early_data_buffered_until_routes_exist(self):
        net = line_network("dsdv", n=3)
        net.protocols[0].send_data(2)  # before any update exchange
        settle(net, until=15.0)
        assert net.metrics.delivered == 1

    def test_control_traffic_is_periodic(self):
        config = DsdvConfig(update_period_s=1.0, update_jitter_s=0.1)
        net = line_network("dsdv", n=3, protocol_config=config)
        net.run(until=10.5)
        updates = net.channel.tx_count_by_kind["announce"]
        # 3 nodes × ~10 periods, modulo jitter and collisions.
        assert 24 <= updates <= 33


class TestFreshness:
    def test_newer_sequence_wins_even_with_worse_metric(self):
        net = line_network("dsdv", n=3)
        settle(net)
        protocol = net.protocols[0]
        route = protocol.routes[2]
        old_seq = route.seq
        # Inject a fresher but worse advertisement by hand.
        from repro.mac.csma import MacRxInfo
        from repro.net.packet import Packet, PacketKind
        update = Packet(kind=PacketKind.ANNOUNCE, origin=1, seq=999,
                        payload={2: (old_seq + 2, 5)})
        protocol._on_update(update, MacRxInfo(src=1, power_dbm=-50, time=0.0))
        assert protocol.routes[2].hops == 6
        assert protocol.routes[2].seq == old_seq + 2

    def test_same_sequence_prefers_fewer_hops(self):
        net = line_network("dsdv", n=3)
        settle(net)
        protocol = net.protocols[0]
        route = protocol.routes[2]
        from repro.mac.csma import MacRxInfo
        from repro.net.packet import Packet, PacketKind
        worse = Packet(kind=PacketKind.ANNOUNCE, origin=1, seq=999,
                       payload={2: (route.seq, route.hops + 3)})
        protocol._on_update(worse, MacRxInfo(src=1, power_dbm=-50, time=0.0))
        assert protocol.routes[2].hops == route.hops  # unchanged


class TestFailures:
    def test_broken_link_advertised_and_healed(self):
        # 0-1-2-3 line plus nothing else: kill node 1, node 0 loses all
        # routes (no alternative), marks them infinite.
        net = line_network("dsdv", n=4)
        settle(net)
        net.radios[1].set_power(False)
        net.protocols[0].send_data(3)
        net.run(until=net.simulator.now + 10.0)
        route = net.protocols[0].routes.get(3)
        assert route is None or not route.valid or route.next_hop != 1 \
            or route.hops >= INFINITY

    def test_recovers_after_node_returns(self):
        config = DsdvConfig(update_period_s=1.0, pending_timeout_s=30.0)
        net = line_network("dsdv", n=4, protocol_config=config)
        settle(net)
        net.radios[1].set_power(False)
        net.run(until=net.simulator.now + 5.0)
        net.radios[1].set_power(True)
        net.run(until=net.simulator.now + 6.0)  # a few update rounds
        net.protocols[0].send_data(3)
        net.run(until=net.simulator.now + 3.0)
        assert net.metrics.delivered == 1
