"""Tests for the packet model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.packet import Packet, PacketKind, SeqCounter


def test_uid_identifies_kind_origin_seq():
    a = Packet(kind=PacketKind.DATA, origin=1, seq=2)
    b = Packet(kind=PacketKind.DATA, origin=1, seq=2, actual_hops=5)
    c = Packet(kind=PacketKind.PATH_REPLY, origin=1, seq=2)
    assert a.uid == b.uid
    assert a.uid != c.uid


def test_forwarded_increments_hops_and_extends_path():
    p = Packet(kind=PacketKind.DATA, origin=0, seq=0, expected_hops=4)
    f = p.forwarded(7)
    assert f.actual_hops == 1
    assert f.path == (7,)
    assert f.expected_hops == 4  # unchanged unless given
    assert p.actual_hops == 0    # original untouched


def test_forwarded_sets_expected_hops_when_given():
    p = Packet(kind=PacketKind.DATA, origin=0, seq=0, expected_hops=4)
    assert p.forwarded(7, expected_hops=3).expected_hops == 3


def test_forwarded_preserves_uid():
    p = Packet(kind=PacketKind.DATA, origin=0, seq=9)
    assert p.forwarded(1).forwarded(2).uid == p.uid


def test_with_fields():
    p = Packet(kind=PacketKind.DATA, origin=0, seq=0)
    q = p.with_fields(expected_hops=9)
    assert q.expected_hops == 9
    assert p.expected_hops == 0


def test_packets_are_immutable():
    p = Packet(kind=PacketKind.DATA, origin=0, seq=0)
    with pytest.raises(AttributeError):
        p.origin = 5


def test_str_compact():
    p = Packet(kind=PacketKind.DATA, origin=1, seq=2, target=3)
    assert "data" in str(p) and "o=1" in str(p) and "t=3" in str(p)


class TestSeqCounter:
    def test_independent_per_key(self):
        counter = SeqCounter()
        assert counter.next("a") == 0
        assert counter.next("a") == 1
        assert counter.next("b") == 0

    def test_default_key(self):
        counter = SeqCounter()
        assert [counter.next() for _ in range(3)] == [0, 1, 2]


@given(st.integers(0, 100), st.integers(0, 100),
       st.lists(st.integers(0, 50), max_size=10))
@settings(max_examples=100, deadline=None)
def test_forward_chain_consistency(origin, seq, relays):
    """actual_hops always equals the relay-path length."""
    p = Packet(kind=PacketKind.DATA, origin=origin, seq=seq)
    for relay in relays:
        p = p.forwarded(relay)
    assert p.actual_hops == len(relays)
    assert p.path == tuple(relays)
