"""Tests for shared network-protocol machinery."""

from repro.net.base import DuplicateCache
from repro.net.packet import Packet, PacketKind


def pkt(seq, kind=PacketKind.DATA, origin=0):
    return Packet(kind=kind, origin=origin, seq=seq)


class TestDuplicateCache:
    def test_first_record_true_then_false(self):
        cache = DuplicateCache()
        assert cache.record(pkt(0)) is True
        assert cache.record(pkt(0)) is False

    def test_seen_does_not_record(self):
        cache = DuplicateCache()
        assert not cache.seen(pkt(0))
        assert not cache.seen(pkt(0))  # still unseen — seen() is read-only

    def test_distinguishes_kinds_and_origins(self):
        cache = DuplicateCache()
        cache.record(pkt(0))
        assert cache.record(pkt(0, kind=PacketKind.PATH_REPLY))
        assert cache.record(pkt(0, origin=1))

    def test_forwarded_copies_are_duplicates(self):
        cache = DuplicateCache()
        p = pkt(0)
        cache.record(p)
        assert cache.record(p.forwarded(5)) is False

    def test_capacity_evicts_oldest(self):
        cache = DuplicateCache(capacity=2)
        cache.record(pkt(0))
        cache.record(pkt(1))
        cache.record(pkt(2))  # evicts seq 0
        assert len(cache) == 2
        assert cache.record(pkt(0)) is True  # forgotten, accepted again
