"""Tests for the AODV baseline."""

import numpy as np
import pytest

from repro.net.aodv import AodvConfig
from repro.net.packet import PacketKind
from tests.conftest import line_network


class TestDiscoveryAndForwarding:
    def test_data_delivered_along_line(self):
        net = line_network("aodv", n=5)
        net.protocols[0].send_data(4)
        net.run(until=5.0)
        assert net.metrics.delivered == 1
        assert net.metrics.deliveries[0].hops == 4

    def test_routes_learned_in_both_directions(self):
        net = line_network("aodv", n=4)
        net.protocols[0].send_data(3)
        net.run(until=5.0)
        # Reverse routes toward the source at every node the RREQ crossed.
        assert net.protocols[3].routes[0].next_hop == 2
        # Forward routes toward the destination along the RREP path.
        assert net.protocols[0].routes[3].next_hop == 1
        assert net.protocols[1].routes[3].next_hop == 2

    def test_hop_counts_in_routing_tables(self):
        net = line_network("aodv", n=5)
        net.protocols[0].send_data(4)
        net.run(until=5.0)
        for i in range(1, 5):
            assert net.protocols[i].routes[0].hops == i

    def test_data_uses_unicast_with_mac_acks(self):
        net = line_network("aodv", n=3)
        net.protocols[0].send_data(2)
        net.run(until=5.0)
        assert net.channel.tx_count_by_kind["mac_ack"] >= 3  # rrep + 2 data hops

    def test_second_packet_reuses_route(self):
        net = line_network("aodv", n=4)
        net.protocols[0].send_data(3)
        net.run(until=5.0)
        rreqs = net.channel.tx_count_by_kind["rreq"]
        net.protocols[0].send_data(3)
        net.run(until=10.0)
        assert net.channel.tx_count_by_kind["rreq"] == rreqs
        assert net.metrics.delivered == 2

    def test_rreq_flood_reaches_whole_line(self):
        net = line_network("aodv", n=5)
        net.protocols[0].send_data(4)
        net.run(until=5.0)
        # Blind flooding: every node except the destination rebroadcasts.
        assert net.channel.tx_count_by_kind["rreq"] == 4

    def test_discovery_failure_drops_buffered_data(self):
        config = AodvConfig(rreq_timeout_s=0.2, max_rreq_retries=1)
        net = line_network("aodv", n=3, spacing=2000.0, protocol_config=config)
        net.protocols[0].send_data(2)
        net.run(until=5.0)
        assert net.metrics.delivered == 0
        assert net.protocols[0].data_dropped == 1


class TestRouteMaintenance:
    def test_link_failure_invalidates_route_and_rediscovers(self):
        net = line_network("aodv", n=4)
        net.protocols[0].send_data(3)
        net.run(until=5.0)
        assert net.metrics.delivered == 1

        # Node 1 (the next hop from the source) dies.  The source's next
        # packet fails at the MAC, triggers rediscovery — and with node 1
        # dead and no alternative path on a line, delivery fails; the route
        # via node 1 must be invalidated.
        net.radios[1].set_power(False)
        net.protocols[0].send_data(3)
        net.run(until=15.0)
        assert net.protocols[0].link_failures >= 1
        assert not net.protocols[0].routes[3].valid or \
            net.protocols[0].routes[3].next_hop != 1

    def test_failover_to_alternate_path(self):
        # Diamond: 0 — {1, 2} — 3.  After the route through the first relay
        # breaks, rediscovery finds the other relay.
        positions = np.array([
            [0.0, 0.0], [200.0, 60.0], [200.0, -60.0], [400.0, 0.0]])
        from repro.experiments.common import ScenarioConfig, build_protocol_network
        net = build_protocol_network(
            "aodv", ScenarioConfig(n_nodes=4, positions=positions,
                                   range_m=250.0, seed=3))
        net.protocols[0].send_data(3)
        net.run(until=5.0)
        assert net.metrics.delivered == 1
        used = net.protocols[0].routes[3].next_hop
        assert used in (1, 2)

        net.radios[used].set_power(False)
        net.protocols[0].send_data(3)
        net.run(until=15.0)
        assert net.metrics.delivered == 2
        other = 1 if used == 2 else 2
        assert net.metrics.deliveries[1].path == (other,)
        # Unlike Routeless Routing, AODV needed a fresh discovery flood.
        assert net.protocols[0].rreqs_sent >= 2

    def test_rerr_propagates_to_source(self):
        # 0—1—2—3: break the 2→3 link mid-route.  Node 2 detects the MAC
        # failure when forwarding and sends a RERR that reaches node 1 and
        # the source, which invalidate their routes to 3.
        net = line_network("aodv", n=4)
        net.protocols[0].send_data(3)
        net.run(until=5.0)

        net.radios[3].set_power(False)
        net.protocols[0].send_data(3)
        net.run(until=15.0)
        assert net.protocols[2].rerrs_sent >= 1
        route = net.protocols[0].routes.get(3)
        assert route is None or not route.valid

    def test_route_expiry(self):
        config = AodvConfig(route_lifetime_s=1.0)
        net = line_network("aodv", n=3, protocol_config=config)
        net.protocols[0].send_data(2)
        net.run(until=5.0)
        rreqs = net.channel.tx_count_by_kind["rreq"]
        # Well past the lifetime, a new packet needs a new discovery.
        net.protocols[0].send_data(2)
        net.run(until=10.0)
        assert net.channel.tx_count_by_kind["rreq"] > rreqs
        assert net.metrics.delivered == 2
