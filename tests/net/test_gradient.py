"""Tests for the Gradient Routing baseline (Section 4.4's comparison)."""

import numpy as np

from tests.conftest import line_network


class TestGradientRouting:
    def test_delivers_along_line(self):
        net = line_network("gradient", n=5)
        net.protocols[0].send_data(4)
        net.run(until=5.0)
        assert net.metrics.delivered == 1

    def test_only_closer_nodes_forward(self):
        # On a line the gradient is strict: each relay is one hop closer, so
        # the relay count matches the hop count exactly.
        net = line_network("gradient", n=5)
        net.protocols[0].send_data(4)
        net.run(until=5.0)
        assert net.metrics.deliveries[0].hops == 4

    def test_gradient_learned_from_discovery(self):
        net = line_network("gradient", n=5)
        net.protocols[0].send_data(4)
        net.run(until=5.0)
        for i in range(1, 5):
            assert net.protocols[i].table.hops_to(0) == i

    def test_redundant_paths_cost_more_than_routeless(self):
        """Section 4.4: 'every node with a smaller hop count may retransmit
        the same packet, resulting in a significant increase in the number of
        packet transmissions' — compare data transmissions on a dense net."""
        from repro.experiments.common import (
            ScenarioConfig, attach_cbr, build_protocol_network, pick_flows)
        from repro.sim.rng import RandomStreams

        data_tx = {}
        for protocol in ("gradient", "routeless"):
            total = 0
            for seed in (1, 2):
                scenario = ScenarioConfig(n_nodes=60, width_m=700, height_m=700,
                                          range_m=250, seed=seed)
                net = build_protocol_network(protocol, scenario)
                flows = pick_flows(60, 3, RandomStreams(seed).stream("f"))
                attach_cbr(net, flows, interval_s=1.0, stop_s=8.0)
                net.run(until=10.0)
                assert net.metrics.delivery_ratio() > 0.9
                total += net.channel.tx_count_by_kind["data"]
            data_tx[protocol] = total
        assert data_tx["gradient"] > data_tx["routeless"]

    def test_node_without_gradient_entry_stays_silent(self):
        # A bystander that never heard the discovery (powered off during it)
        # must not relay data packets.
        net = line_network("gradient", n=5)
        net.radios[2].set_power(False)
        net.protocols[0].send_data(1)  # 1-hop flow; discovery floods anyway
        net.run(until=2.0)
        net.radios[2].set_power(True)
        relays_before = net.protocols[2].relays
        net.protocols[0].send_data(1)
        net.run(until=4.0)
        assert net.protocols[2].relays == relays_before
