"""Routeless Routing under motion: relays that walk away are replaced
mid-conversation, with no discovery re-flood."""

import numpy as np
import pytest

from repro.experiments.common import ScenarioConfig, build_protocol_network
from repro.topology.mobility import MobilityConfig, RandomWaypoint


class TestMovingRelays:
    def test_flow_survives_relay_churn(self):
        # Endpoints pinned at opposite corners; 40 relays wander at bus
        # speed between them.  The flow must keep delivering even though no
        # specific relay stays put.
        rng = np.random.default_rng(6)
        positions = rng.uniform(0, 800, size=(60, 2))
        positions[0] = [30.0, 30.0]
        positions[1] = [770.0, 770.0]
        scenario = ScenarioConfig(n_nodes=60, positions=positions,
                                  range_m=250.0, seed=6)
        net = build_protocol_network("routeless", scenario)
        RandomWaypoint(net.ctx, net.channel, 800.0, 800.0,
                       MobilityConfig(min_speed_mps=3.0, max_speed_mps=10.0),
                       frozen={0, 1})
        sent = 0
        for k in range(25):
            net.protocols[0].send_data(1)
            sent += 1
            net.run(until=net.simulator.now + 1.0)
        net.run(until=net.simulator.now + 3.0)

        summary = net.summary()
        # ~6-hop corner-to-corner routes under constant relay churn: some
        # per-hop elections fail against freshly-stale tables.  The paper
        # assigns recovery to "some upper layer protocol ... invoked
        # repeatedly"; without that layer, two-thirds delivery on the worst-
        # case flow is the protocol working as specified.
        assert summary.delivered >= 0.66 * sent, summary
        # The paths used must actually differ over time — the relays moved.
        paths = {d.path for d in net.metrics.deliveries}
        assert len(paths) >= 3

    def test_tables_track_shrinking_distance(self):
        # One relay walks from far away toward the source; once adjacent,
        # the source's table entry for it (learned passively from its
        # transmissions) must reflect the 1-hop distance.
        positions = np.array([
            [0.0, 0.0],      # 0: static observer (source)
            [200.0, 0.0],    # 1: static relay
            [400.0, 0.0],    # 2: the walker, initially 2 hops away
        ])
        scenario = ScenarioConfig(n_nodes=3, positions=positions,
                                  range_m=250.0, seed=1)
        net = build_protocol_network("routeless", scenario)
        net.protocols[2].send_data(0)
        net.run(until=2.0)
        assert net.protocols[0].table.hops_to(2) == 2

        # Teleport node 2 next to node 0 (a worst-case topology change) and
        # let it transmit again: the stale entry must be replaced once it
        # ages out.
        moved = positions.copy()
        moved[2] = [50.0, 0.0]
        net.channel.set_positions(moved)
        net.run(until=12.0)  # exceed table_stale_after
        net.protocols[2].send_data(0)
        net.run(until=net.simulator.now + 2.0)
        assert net.protocols[0].table.hops_to(2) == 1
        assert net.metrics.delivered == 2
