"""Tests for Routeless Routing's adaptivity claims (Section 4.2).

"Data packets and path reply packets always carry the most up-to-date
information about the distance from the originating node.  Hence, Routeless
Routing can often choose the shortest paths to the destination" — and keeps
choosing them as the topology changes.
"""

import numpy as np
import pytest

from repro.experiments.common import ScenarioConfig, build_protocol_network
from repro.net.routeless import RoutelessConfig


def build(positions, seed=1, config=None):
    return build_protocol_network(
        "routeless",
        ScenarioConfig(n_nodes=len(positions), positions=np.asarray(positions),
                       range_m=250.0, seed=seed),
        protocol_config=config,
    )


class TestShortestPathAdaptivity:
    def test_line_route_takes_minimum_hops(self):
        # Route 0→4 over an 800 m line at 250 m range: the true shortest
        # path is exactly 4 hops, and the election must find it (no detour
        # through redundant elections inflating the delivered hop count).
        positions = [
            [0.0, 0.0], [200.0, 0.0], [400.0, 0.0], [600.0, 0.0], [800.0, 0.0]]
        net = build(positions)
        net.protocols[0].send_data(4)
        net.run(until=3.0)
        assert net.metrics.deliveries[0].hops == 4

    def test_tables_refresh_from_data_traffic(self):
        # Distances learned at discovery stay fresh because every data packet
        # carries the current hop count: after many packets, node 1's entry
        # for the source is still exactly 1 (not stale or inflated).
        positions = [[0.0, 0.0], [200.0, 0.0], [400.0, 0.0], [600.0, 0.0]]
        net = build(positions)
        for _ in range(5):
            net.protocols[0].send_data(3)
            net.run(until=net.simulator.now + 1.0)
        assert net.protocols[1].table.hops_to(0) == 1
        assert net.protocols[2].table.hops_to(0) == 2
        assert net.protocols[3].table.hops_to(0) == 3

    def test_stale_entries_relearned_after_topology_change(self):
        # Node 1 carries 0↔2 at first; it dies and node 3 (parallel relay)
        # takes over.  Long after, node 3's table must reflect reality and
        # the route stays 2 hops through node 3.
        positions = [
            [0.0, 0.0], [200.0, 60.0], [400.0, 0.0], [200.0, -60.0]]
        config = RoutelessConfig(table_stale_after=2.0)
        net = build(positions, config=config)
        net.protocols[0].send_data(2)
        net.run(until=2.0)
        first_path = net.metrics.deliveries[0].path
        assert first_path in ((1,), (3,))
        survivor = 3 if first_path == (1,) else 1
        net.radios[first_path[0]].set_power(False)

        for _ in range(4):
            net.protocols[0].send_data(2)
            net.run(until=net.simulator.now + 2.0)
        late = net.metrics.deliveries[-1]
        assert late.path == (survivor,)
        assert late.hops == 2

    def test_bidirectional_traffic_teaches_both_directions(self):
        positions = [[0.0, 0.0], [200.0, 0.0], [400.0, 0.0]]
        net = build(positions)
        net.protocols[0].send_data(2)
        net.run(until=2.0)
        net.protocols[2].send_data(0)
        net.run(until=4.0)
        assert net.metrics.delivered == 2
        # The reverse flow needed no discovery: tables already knew node 0.
        assert net.channel.tx_count_by_kind["path_discovery"] <= 3


class TestHonestFailureReporting:
    def test_unreachable_after_partition_is_not_delivered(self):
        # After delivery works, partition the network; packets must NOT be
        # reported delivered, and the sim must quiesce (no infinite retries).
        positions = [[0.0, 0.0], [200.0, 0.0], [400.0, 0.0]]
        config = RoutelessConfig(max_relay_retries=2, arbiter_timeout_s=0.1)
        net = build(positions, config=config)
        net.protocols[0].send_data(2)
        net.run(until=2.0)
        assert net.metrics.delivered == 1

        net.radios[1].set_power(False)
        net.radios[2].set_power(False)
        net.protocols[0].send_data(2)
        net.run(until=10.0)
        assert net.metrics.delivered == 1
        net.run(until=30.0)
        assert net.simulator.pending == 0  # gave up cleanly
