"""Tests for the DSR baseline."""

import numpy as np
import pytest

from repro.net.dsr import DsrConfig, ROUTE_ENTRY_BYTES
from tests.conftest import line_network


class TestDiscovery:
    def test_data_delivered_along_line(self):
        net = line_network("dsr", n=5)
        net.protocols[0].send_data(4)
        net.run(until=5.0)
        assert net.metrics.delivered == 1
        assert net.metrics.deliveries[0].hops == 4

    def test_route_cache_holds_full_source_route(self):
        net = line_network("dsr", n=4)
        net.protocols[0].send_data(3)
        net.run(until=5.0)
        assert net.protocols[0].route_cache[3] == (0, 1, 2, 3)

    def test_second_packet_skips_discovery(self):
        net = line_network("dsr", n=4)
        net.protocols[0].send_data(3)
        net.run(until=5.0)
        rreqs = net.channel.tx_count_by_kind["rreq"]
        net.protocols[0].send_data(3)
        net.run(until=10.0)
        assert net.channel.tx_count_by_kind["rreq"] == rreqs
        assert net.metrics.delivered == 2

    def test_data_carries_route_overhead(self):
        # The frame on the air must be bigger than the bare payload by the
        # per-hop route bytes.
        net = line_network("dsr", n=4)
        packet = net.protocols[0].send_data(3)
        net.run(until=5.0)
        delivered = net.metrics.deliveries[0]
        # route (0,1,2,3) = 4 entries
        assert delivered.uid == packet.uid
        # intermediate forwarding kept the route intact:
        assert net.protocols[1].data_forwarded == 1
        assert net.protocols[2].data_forwarded == 1

    def test_discovery_failure_drops(self):
        config = DsrConfig(rreq_timeout_s=0.2, max_rreq_retries=1)
        net = line_network("dsr", n=3, spacing=2000.0, protocol_config=config)
        net.protocols[0].send_data(2)
        net.run(until=5.0)
        assert net.metrics.delivered == 0
        assert net.protocols[0].data_dropped == 1


class TestRouteMaintenance:
    def test_broken_link_purges_cache_and_rediscovers(self):
        positions = np.array([
            [0.0, 0.0], [200.0, 60.0], [200.0, -60.0], [400.0, 0.0]])
        from repro.experiments.common import ScenarioConfig, build_protocol_network
        net = build_protocol_network(
            "dsr", ScenarioConfig(n_nodes=4, positions=positions,
                                  range_m=250.0, seed=3))
        net.protocols[0].send_data(3)
        net.run(until=5.0)
        assert net.metrics.delivered == 1
        used = net.protocols[0].route_cache[3]
        relay = used[1]

        net.radios[relay].set_power(False)
        net.protocols[0].send_data(3)
        net.run(until=15.0)
        assert net.metrics.delivered == 2
        other = 1 if relay == 2 else 2
        assert net.protocols[0].route_cache[3] == (0, other, 3)
        assert net.protocols[0].rreqs_sent >= 2

    def test_midroute_failure_sends_rerr_to_source(self):
        net = line_network("dsr", n=4)
        net.protocols[0].send_data(3)
        net.run(until=5.0)
        net.radios[3].set_power(False)
        net.protocols[0].send_data(3)
        net.run(until=15.0)
        # Node 2 failed to reach 3 and reported it; the source purged the route.
        assert net.protocols[2].rerrs_sent >= 1
        assert 3 not in net.protocols[0].route_cache
