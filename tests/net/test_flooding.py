"""Tests for the flooding family: blind, counter-1, SSAF."""

import numpy as np
import pytest

from repro.core.backoff import RandomBackoff
from repro.net.flooding import FloodingConfig
from repro.net.packet import PacketKind
from tests.conftest import line_network, line_positions


def run_flood(protocol, n=5, spacing=200.0, src=0, dst=None, until=5.0,
              protocol_config=None, seed=1):
    net = line_network(protocol, n=n, spacing=spacing, seed=seed,
                       protocol_config=protocol_config)
    dst = n - 1 if dst is None else dst
    net.protocols[src].send_data(dst)
    net.run(until=until)
    return net


class TestCounter1:
    def test_delivers_along_line(self, ctx):
        net = run_flood("counter1")
        assert net.metrics.delivered == 1
        d = net.metrics.deliveries[0]
        assert d.hops == 4  # 0→1→2→3→4

    def test_each_node_rebroadcasts_at_most_once(self):
        net = run_flood("counter1")
        assert net.channel.tx_count_by_kind["data"] <= 5

    def test_destination_does_not_rebroadcast(self):
        # 3-node line: src 0, relay 1, dst 2 → exactly 2 data transmissions.
        net = run_flood("counter1", n=3)
        assert net.channel.tx_count_by_kind["data"] == 2

    def test_duplicate_suppression_on_dense_clique(self):
        # All nodes in range: source transmits, at most one rebroadcast
        # usually follows before everyone is suppressed.
        net = run_flood("counter1", n=8, spacing=20.0, dst=7)
        assert net.metrics.delivered == 1
        assert net.metrics.deliveries[0].hops == 1  # direct reception
        suppressed = sum(p.suppressed for p in net.protocols)
        rebroadcast = sum(p.rebroadcasts for p in net.protocols)
        assert suppressed + rebroadcast == 6  # everyone but src and dst chose

    def test_max_hops_bounds_propagation(self):
        config = FloodingConfig(policy=RandomBackoff(max_delay=0.02),
                                suppress_on_duplicate=True, max_hops=2)
        net = run_flood("counter1", n=6, protocol_config=config)
        assert net.metrics.delivered == 0  # needs 5 hops, only 2 allowed

    def test_sequence_numbers_distinguish_packets(self):
        net = line_network("counter1", n=3, spacing=200.0)
        net.protocols[0].send_data(2)
        net.protocols[0].send_data(2)
        net.run(until=5.0)
        assert net.metrics.delivered == 2


class TestBlindFlooding:
    def test_no_suppression_every_node_rebroadcasts(self):
        # On a clique of 8, blind flooding re-transmits at every node except
        # the destination, even though everyone already has the packet.
        blind = run_flood("blind", n=8, spacing=20.0, dst=7)
        counter1 = run_flood("counter1", n=8, spacing=20.0, dst=7)
        assert blind.channel.tx_count_by_kind["data"] == 7  # src + 6 relays
        assert blind.channel.tx_count_by_kind["data"] > \
            counter1.channel.tx_count_by_kind["data"]

    def test_still_delivers(self):
        net = run_flood("blind")
        assert net.metrics.delivered == 1


class TestSSAF:
    def test_delivers_along_line(self):
        net = run_flood("ssaf")
        assert net.metrics.delivered == 1

    def test_farthest_neighbor_forwards(self, ctx):
        # Node 0 sends; nodes 1 (100 m) and 2 (200 m) both hear it.  Node 2's
        # weaker signal gives it the shorter backoff, so node 2 relays and
        # node 1 is suppressed.  Node 3 (400 m) only hears node 2.
        positions = np.array([[0.0, 0.0], [100.0, 0.0], [200.0, 0.0], [400.0, 0.0]])
        from repro.experiments.common import ScenarioConfig, build_protocol_network
        net = build_protocol_network(
            "ssaf", ScenarioConfig(n_nodes=4, positions=positions, range_m=250.0, seed=1))
        net.protocols[0].send_data(3)
        net.run(until=5.0)
        assert net.metrics.delivered == 1
        path = net.metrics.deliveries[0].path
        assert path == (2,)  # node 2 was elected, node 1 never relayed

    def test_fewer_hops_than_counter1_on_random_topology(self):
        # The headline Figure 1 property at miniature scale, averaged over
        # seeds to damp the randomness.
        from repro.experiments.common import (
            ScenarioConfig, attach_cbr, build_protocol_network, pick_flows)
        from repro.sim.rng import RandomStreams

        hops = {}
        for protocol in ("counter1", "ssaf"):
            total, count = 0.0, 0
            for seed in (1, 2, 3):
                scenario = ScenarioConfig(n_nodes=40, width_m=700, height_m=700,
                                          range_m=250, seed=seed)
                net = build_protocol_network(protocol, scenario)
                flows = pick_flows(40, 5, RandomStreams(seed).stream("f"),
                                   distinct_endpoints=False)
                attach_cbr(net, flows, interval_s=1.0, stop_s=8.0)
                net.run(until=10.0)
                total += sum(d.hops for d in net.metrics.deliveries)
                count += len(net.metrics.deliveries)
            hops[protocol] = total / count
        assert hops["ssaf"] < hops["counter1"]


class TestMetricsIntegration:
    def test_origination_and_delivery_recorded(self):
        net = run_flood("counter1", n=3)
        assert net.metrics.generated == 1
        assert net.metrics.delivered == 1
        assert net.metrics.delivery_ratio() == 1.0
        assert net.metrics.deliveries[0].delay > 0

    def test_unreachable_destination_counts_as_loss(self):
        net = line_network("counter1", n=3, spacing=2000.0)  # disconnected
        net.protocols[0].send_data(2)
        net.run(until=5.0)
        assert net.metrics.generated == 1
        assert net.metrics.delivered == 0
