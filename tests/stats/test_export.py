"""Tests for CSV/JSON export of sweep results."""

import csv
import json

import pytest

from repro.stats.export import (
    read_csv_rows,
    read_json_rows,
    series_to_rows,
    to_json,
    write_campaign_summary,
    write_csv,
    write_json,
)
from repro.stats.metrics import MetricsSummary
from repro.stats.series import SweepSeries


@pytest.fixture
def results():
    series = SweepSeries("routeless")
    for x, delay in ((1.0, 0.1), (1.0, 0.3), (2.0, 0.2)):
        series.add(x, MetricsSummary(generated=10, delivered=10,
                                     delivery_ratio=1.0, avg_delay_s=delay,
                                     avg_hops=3.0, mac_packets=100))
    return {"routeless": series}


def test_rows_flatten_every_point_and_metric(results):
    rows = series_to_rows(results)
    # 2 x-values × 4 metrics
    assert len(rows) == 8
    delays = [r for r in rows if r["metric"] == "avg_delay_s" and r["x"] == 1.0]
    assert delays[0]["mean"] == pytest.approx(0.2)
    assert delays[0]["n"] == 2


def test_csv_roundtrip(results, tmp_path):
    path = tmp_path / "out.csv"
    write_csv(results, str(path))
    with open(path) as handle:
        rows = list(csv.DictReader(handle))
    assert len(rows) == 8
    assert rows[0]["protocol"] == "routeless"
    assert {"protocol", "x", "metric", "mean", "stderr", "n"} == set(rows[0])


def test_json_structure(results):
    payload = json.loads(to_json(results))
    assert payload["routeless"]["xs"] == [1.0, 2.0]
    points = payload["routeless"]["metrics"]["avg_delay_s"]
    assert points[0]["x"] == 1.0
    assert points[0]["mean"] == pytest.approx(0.2)


def test_json_file(results, tmp_path):
    path = tmp_path / "out.json"
    write_json(results, str(path))
    assert json.loads(path.read_text())["routeless"]["xs"] == [1.0, 2.0]


def _row_key(row):
    return (row["protocol"], row["x"], row["metric"])


class TestRoundTrips:
    """CSV and JSON exports parse back to the exact source rows."""

    def test_csv_roundtrip_exact(self, results, tmp_path):
        path = tmp_path / "out.csv"
        write_csv(results, path)
        assert sorted(read_csv_rows(path), key=_row_key) == \
            sorted(series_to_rows(results), key=_row_key)

    def test_json_roundtrip_exact(self, results, tmp_path):
        path = tmp_path / "out.json"
        write_json(results, path)
        assert sorted(read_json_rows(path), key=_row_key) == \
            sorted(series_to_rows(results), key=_row_key)


class TestPathHandling:
    """Writers accept os.PathLike and create missing parent directories."""

    def test_write_csv_pathlike_nested(self, results, tmp_path):
        path = tmp_path / "a" / "b" / "out.csv"
        write_csv(results, path)
        assert len(read_csv_rows(path)) == 8

    def test_write_json_pathlike_nested(self, results, tmp_path):
        path = tmp_path / "deep" / "out.json"
        write_json(results, path)
        assert json.loads(path.read_text())["routeless"]["xs"] == [1.0, 2.0]

    def test_write_campaign_summary_nested(self, tmp_path):
        path = tmp_path / "runs" / "summary.json"
        write_campaign_summary({"executed": 3, "cache_hits": 1}, path)
        assert json.loads(path.read_text()) == {"executed": 3, "cache_hits": 1}


class TestCli:
    def test_list(self, capsys):
        from repro.experiments.cli import main
        assert main(["list"]) == 0
        assert "fig1" in capsys.readouterr().out

    def test_unknown_experiment_rejected(self):
        from repro.experiments.cli import main
        with pytest.raises(SystemExit):
            main(["fig9"])

    def test_tiny_sweep_with_exports(self, tmp_path, capsys, monkeypatch):
        # Patch fig1 to a minimal configuration so the CLI path is exercised
        # end-to-end in seconds.
        import repro.experiments.cli as cli
        from repro.experiments.fig1_ssaf import Fig1Config, run_fig1

        tiny = Fig1Config(n_nodes=25, terrain_m=500.0, n_connections=2,
                          intervals_s=(2.0,), duration_s=5.0, seeds=(1,))
        monkeypatch.setitem(
            cli.EXPERIMENTS, "fig1",
            (lambda: run_fig1(tiny),) + cli.EXPERIMENTS["fig1"][1:])

        csv_path = tmp_path / "fig1.csv"
        json_path = tmp_path / "fig1.json"
        assert cli.main(["fig1", "--csv", str(csv_path),
                         "--json", str(json_path)]) == 0
        out = capsys.readouterr().out
        assert "avg_delay_s" in out
        assert csv_path.exists() and json_path.exists()
        with open(csv_path) as handle:
            assert len(list(csv.DictReader(handle))) == 8  # 2 protos × 1 x × 4 metrics
