"""Tests for per-flow statistics and fairness."""

import pytest

from repro.net.packet import Packet, PacketKind
from repro.stats.flows import flow_table, format_flow_table, jain_index
from repro.stats.metrics import MetricsCollector


def data(origin, seq, target, created_at=0.0):
    return Packet(kind=PacketKind.DATA, origin=origin, seq=seq, target=target,
                  created_at=created_at)


@pytest.fixture
def metrics():
    m = MetricsCollector()
    # Flow 0→9: 3 generated, 2 delivered.
    for seq in range(3):
        m.on_originated(data(0, seq, 9))
    m.on_delivered(data(0, 0, 9).forwarded(4), now=1.0, node_id=9)
    m.on_delivered(data(0, 1, 9).forwarded(4).forwarded(5), now=2.0, node_id=9)
    # Flow 2→7: 1 generated, 1 delivered.
    m.on_originated(data(2, 0, 7))
    m.on_delivered(data(2, 0, 7), now=0.5, node_id=7)
    return m


class TestFlowTable:
    def test_rows_per_flow(self, metrics):
        rows = flow_table(metrics)
        assert [(r.origin, r.target) for r in rows] == [(0, 9), (2, 7)]

    def test_per_flow_counts(self, metrics):
        rows = {(r.origin, r.target): r for r in flow_table(metrics)}
        assert rows[(0, 9)].generated == 3
        assert rows[(0, 9)].delivered == 2
        assert rows[(0, 9)].delivery_ratio == pytest.approx(2 / 3)
        assert rows[(2, 7)].delivery_ratio == 1.0

    def test_per_flow_means(self, metrics):
        rows = {(r.origin, r.target): r for r in flow_table(metrics)}
        assert rows[(0, 9)].avg_delay_s == pytest.approx(1.5)
        assert rows[(0, 9)].avg_hops == pytest.approx((2 + 3) / 2)

    def test_undelivered_flow_has_zeroes(self):
        m = MetricsCollector()
        m.on_originated(data(1, 0, 5))
        rows = flow_table(m)
        assert rows[0].delivered == 0
        assert rows[0].avg_delay_s == 0.0

    def test_formatting(self, metrics):
        text = format_flow_table(flow_table(metrics))
        assert "0→9" in text and "Jain" in text


class TestJainIndex:
    def test_perfect_fairness(self):
        assert jain_index([0.9, 0.9, 0.9]) == pytest.approx(1.0)

    def test_total_unfairness(self):
        assert jain_index([1.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_empty_and_zero(self):
        assert jain_index([]) == 1.0
        assert jain_index([0.0, 0.0]) == 1.0

    def test_bounds(self):
        values = [0.1, 0.5, 0.9, 0.3]
        assert 1 / len(values) <= jain_index(values) <= 1.0

    def test_end_to_end_fairness_is_high(self):
        # Real run: Routeless Routing should serve its flows evenly.
        from repro.experiments.common import (
            ScenarioConfig, attach_cbr, build_protocol_network, pick_flows)
        from repro.sim.rng import RandomStreams

        net = build_protocol_network(
            "routeless", ScenarioConfig(n_nodes=60, width_m=700, height_m=700,
                                        seed=3))
        flows = pick_flows(60, 4, RandomStreams(3).stream("f"))
        attach_cbr(net, flows, interval_s=1.0, stop_s=15.0)
        net.run(until=18.0)
        rows = flow_table(net.metrics)
        assert len(rows) == 4
        assert jain_index([r.delivery_ratio for r in rows]) > 0.9
