"""Tests for metrics collection."""

import pytest

from repro.net.packet import Packet, PacketKind
from repro.stats.metrics import MetricsCollector


def data(origin=0, seq=0, target=9, created_at=0.0):
    return Packet(kind=PacketKind.DATA, origin=origin, seq=seq, target=target,
                  created_at=created_at)


class TestCollector:
    def test_delivery_ratio(self):
        m = MetricsCollector()
        for i in range(4):
            m.on_originated(data(seq=i))
        m.on_delivered(data(seq=0).forwarded(1), now=1.0, node_id=9)
        m.on_delivered(data(seq=1).forwarded(1), now=1.0, node_id=9)
        assert m.generated == 4
        assert m.delivered == 2
        assert m.delivery_ratio() == 0.5

    def test_empty_collector_is_sane(self):
        m = MetricsCollector()
        assert m.delivery_ratio() == 0.0
        assert m.avg_delay_s() == 0.0
        assert m.avg_hops() == 0.0

    def test_duplicate_deliveries_count_once(self):
        m = MetricsCollector()
        m.on_originated(data())
        copy = data().forwarded(1)
        m.on_delivered(copy, now=1.0, node_id=9)
        m.on_delivered(copy, now=2.0, node_id=9)
        assert m.delivered == 1
        assert m.duplicate_deliveries == 1

    def test_delay_measured_from_origination(self):
        m = MetricsCollector()
        m.on_originated(data(created_at=5.0))
        m.on_delivered(data(created_at=5.0), now=7.5, node_id=9)
        assert m.avg_delay_s() == pytest.approx(2.5)

    def test_delay_uses_origination_record_not_forward_copy(self):
        # A relayed copy carries the origination time; even if a protocol
        # rewrote created_at, the collector trusts its own record.
        m = MetricsCollector()
        m.on_originated(data(created_at=1.0))
        tampered = data(created_at=1.0).with_fields(created_at=3.0)
        m.on_delivered(tampered, now=4.0, node_id=9)
        assert m.deliveries[0].delay == pytest.approx(3.0)

    def test_hops_count_nodes_traversed(self):
        # Paper definition: direct delivery = 1 hop.
        m = MetricsCollector()
        m.on_originated(data(seq=0))
        m.on_originated(data(seq=1))
        m.on_delivered(data(seq=0), now=1.0, node_id=9)                      # direct
        m.on_delivered(data(seq=1).forwarded(4).forwarded(5), now=1.0, node_id=9)
        assert m.deliveries[0].hops == 1
        assert m.deliveries[1].hops == 3
        assert m.avg_hops() == 2.0

    def test_relay_usage_and_paths(self):
        m = MetricsCollector()
        m.on_originated(data(seq=0, origin=1, target=9))
        m.on_delivered(data(seq=0, origin=1, target=9).forwarded(4).forwarded(5),
                       now=1.0, node_id=9)
        assert m.relay_usage[4] == 1
        assert m.relay_usage[5] == 1
        assert m.paths_between(1, 9) == [(4, 5)]
        assert m.paths_between(2, 9) == []

    def test_summary_includes_channel_tx(self):
        class FakeChannel:
            tx_count = 42

        m = MetricsCollector()
        m.on_originated(data())
        m.on_delivered(data(), now=1.0, node_id=9)
        summary = m.summary(FakeChannel())
        assert summary.mac_packets == 42
        assert summary.delivery_ratio == 1.0
