"""Tests for sweep aggregation and table formatting."""

import math

import pytest

from repro.stats.metrics import MetricsSummary
from repro.stats.series import PointStats, SweepSeries, format_table


def summary(ratio=1.0, delay=0.1, hops=3.0, mac=100):
    return MetricsSummary(generated=10, delivered=int(10 * ratio),
                          delivery_ratio=ratio, avg_delay_s=delay,
                          avg_hops=hops, mac_packets=mac)


class TestSweepSeries:
    def test_mean_over_seeds(self):
        series = SweepSeries("p")
        series.add(1.0, summary(delay=0.1))
        series.add(1.0, summary(delay=0.3))
        stats = series.metric(1.0, "avg_delay_s")
        assert stats.mean == pytest.approx(0.2)
        assert stats.n == 2

    def test_stderr_and_ci(self):
        series = SweepSeries("p")
        series.add(1.0, summary(delay=0.1))
        series.add(1.0, summary(delay=0.3))
        stats = series.metric(1.0, "avg_delay_s")
        # sample std = 0.1414, stderr = 0.1
        assert stats.stderr == pytest.approx(0.1)
        assert stats.ci95 == pytest.approx(0.196)

    def test_single_sample_zero_stderr(self):
        series = SweepSeries("p")
        series.add(1.0, summary())
        assert series.metric(1.0, "avg_hops").stderr == 0.0

    def test_xs_sorted(self):
        series = SweepSeries("p")
        series.add(4.0, summary())
        series.add(1.0, summary())
        series.add(2.0, summary())
        assert series.xs == [1.0, 2.0, 4.0]

    def test_curve(self):
        series = SweepSeries("p")
        series.add(1.0, summary(hops=2.0))
        series.add(2.0, summary(hops=4.0))
        assert series.curve("avg_hops") == [(1.0, 2.0), (2.0, 4.0)]

    def test_unknown_metric_rejected(self):
        series = SweepSeries("p")
        series.add(1.0, summary())
        with pytest.raises(KeyError):
            series.metric(1.0, "nonexistent")


class TestFormatTable:
    def test_one_row_per_x_one_column_per_series(self):
        a, b = SweepSeries("aodv"), SweepSeries("routeless")
        for x in (1.0, 2.0):
            a.add(x, summary(delay=0.1 * x))
            b.add(x, summary(delay=0.3 * x))
        table = format_table([a, b], "avg_delay_s", x_label="pairs")
        lines = table.splitlines()
        assert len(lines) == 3  # header + two rows
        assert "aodv" in lines[0] and "routeless" in lines[0]
        assert "0.1000" in lines[1] and "0.3000" in lines[1]

    def test_missing_points_dashed(self):
        a, b = SweepSeries("a"), SweepSeries("b")
        a.add(1.0, summary())
        b.add(2.0, summary())
        table = format_table([a, b], "avg_hops")
        assert "-" in table
