"""On-disk result cache: round-trips, sharding, atomicity, stats."""

import json

from repro.campaign.cache import ResultCache, summary_from_dict, summary_to_dict
from tests.campaign.fakes import FakeConfig, make_summary

KEY = "ab" + "0" * 62
OTHER = "cd" + "1" * 62


def test_roundtrip_exact(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    summary = make_summary("ssaf", 0.1, 3, FakeConfig())
    cache.put(KEY, summary)
    assert cache.get(KEY) == summary  # frozen dataclass: field-exact equality


def test_miss_returns_none_and_counts(tmp_path):
    cache = ResultCache(tmp_path)
    assert cache.get(KEY) is None
    assert cache.misses == 1 and cache.hits == 0
    cache.put(KEY, make_summary("a", 1.0, 1, FakeConfig()))
    assert cache.get(KEY) is not None
    assert cache.hits == 1
    assert cache.hit_ratio == 0.5


def test_sharded_layout(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put(KEY, make_summary("a", 1.0, 1, FakeConfig()))
    cache.put(OTHER, make_summary("b", 2.0, 1, FakeConfig()))
    assert (tmp_path / "ab").is_dir()
    assert (tmp_path / "cd").is_dir()
    assert cache.entry_count() == 2


def test_contains(tmp_path):
    cache = ResultCache(tmp_path)
    assert KEY not in cache
    cache.put(KEY, make_summary("a", 1.0, 1, FakeConfig()))
    assert KEY in cache


def test_corrupt_entry_is_a_miss(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put(KEY, make_summary("a", 1.0, 1, FakeConfig()))
    path = cache._path(KEY)
    path.write_text("{ torn json")
    assert cache.get(KEY) is None


def test_no_tmp_litter_after_put(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put(KEY, make_summary("a", 1.0, 1, FakeConfig()))
    assert not list(tmp_path.glob("**/*.tmp"))


def test_meta_recorded(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put(KEY, make_summary("a", 1.0, 1, FakeConfig()),
              meta={"runner": "fig1"})
    payload = json.loads(cache._path(KEY).read_text())
    assert payload["meta"]["runner"] == "fig1"
    assert payload["key"] == KEY


def test_summary_dict_roundtrip_preserves_floats():
    summary = make_summary("ssaf", 0.1, 1, FakeConfig(scale=1 / 3))
    redecoded = summary_from_dict(json.loads(json.dumps(summary_to_dict(summary))))
    assert redecoded == summary
