"""Campaign-level observability folding (run_campaign(observe=True))."""

import json

from repro.campaign import run_campaign
from repro.stats.metrics import MetricsSummary
from tests.campaign import fakes

PROTOCOLS = ("alpha", "beta")
XS = (1.0, 2.0)
SEEDS = (1,)
GRID = len(PROTOCOLS) * len(XS) * len(SEEDS)


def kwargs(**extra):
    base = dict(runner_name="fake", protocols=PROTOCOLS, xs=XS, seeds=SEEDS,
                config=fakes.FakeConfig())
    base.update(extra)
    return base


class TestObserveSerial:
    def test_observed_cells_fold_into_summary(self):
        outcome = run_campaign(fakes.observed_run_one,
                               **kwargs(observe=True))
        obs = outcome.summary["obs"]
        assert obs is not None
        assert obs["cells_observed"] == GRID
        fake = obs["metrics"]["fake_cells_total"]["samples"]
        per_protocol = {json.loads(k)[0]: v for k, v in fake.items()}
        assert per_protocol == {"alpha": 2.0, "beta": 2.0}
        delay = obs["metrics"]["repro_delivery_delay_seconds"]["samples"]
        (sample,) = delay.values()
        assert sample["count"] == GRID

    def test_results_and_records_hold_plain_summaries(self):
        outcome = run_campaign(fakes.observed_run_one,
                               **kwargs(observe=True))
        for record in outcome.records.values():
            assert isinstance(record.summary, MetricsSummary)
        series = outcome.results["alpha"]
        assert len(series.curve("delivery_ratio")) == len(XS)

    def test_observe_off_leaves_obs_none(self):
        outcome = run_campaign(fakes.observed_run_one, **kwargs())
        assert outcome.summary["obs"] is None


class TestObserveWithCache:
    def test_cache_stores_plain_summary_and_hits_skip_obs(self, tmp_path):
        cache_dir = tmp_path / "cache"
        first = run_campaign(fakes.observed_run_one,
                             **kwargs(observe=True, cache_dir=cache_dir))
        assert first.summary["obs"]["cells_observed"] == GRID

        second = run_campaign(fakes.observed_run_one,
                              **kwargs(observe=True, cache_dir=cache_dir))
        # Every cell was a cache hit: nothing executed, nothing observed.
        assert second.summary["cache_hits"] == GRID
        assert second.summary["obs"] is None
        assert first.results["alpha"].curve("avg_delay_s") == \
            second.results["alpha"].curve("avg_delay_s")

    def test_cache_key_unchanged_by_observe_flag(self, tmp_path):
        cache_dir = tmp_path / "cache"
        run_campaign(fakes.observed_run_one, **kwargs(cache_dir=cache_dir))
        observed = run_campaign(fakes.observed_run_one,
                                **kwargs(observe=True, cache_dir=cache_dir))
        assert observed.summary["cache_hits"] == GRID


class TestObservePooled:
    def test_snapshots_cross_the_process_boundary(self):
        outcome = run_campaign(fakes.observed_run_one,
                               **kwargs(observe=True, workers=2))
        obs = outcome.summary["obs"]
        assert obs["cells_observed"] == GRID
        total = sum(obs["metrics"]["fake_cells_total"]["samples"].values())
        assert total == GRID
        for record in outcome.records.values():
            assert isinstance(record.summary, MetricsSummary)
