"""Concurrent and corrupt-entry behaviour of the result cache.

The atomic ``os.replace`` publish means a reader interleaved with any
number of same-key writers sees either nothing or a complete entry —
never a torn one — and the malformed-entry path turns bad on-disk bytes
into counted misses with the corrupt file quarantined out of the store.
"""

from __future__ import annotations

import json
import multiprocessing

from repro.campaign.cache import ResultCache
from tests.campaign.fakes import FakeConfig, make_summary

KEY = "ab" + "0" * 62
EXPECTED = make_summary("ssaf", 0.5, 3, FakeConfig())


def _hammer_put(root: str, n_puts: int) -> None:
    """Worker: publish the same key repeatedly (idempotent bytes)."""
    cache = ResultCache(root)
    for _ in range(n_puts):
        cache.put(KEY, EXPECTED)


def test_multiprocess_put_same_key_never_torn(tmp_path):
    root = tmp_path / "cache"
    writers = [multiprocessing.Process(target=_hammer_put,
                                       args=(str(root), 40))
               for _ in range(4)]
    for w in writers:
        w.start()
    reader = ResultCache(root)
    observed_complete = 0
    # Interleave gets with the writers; every read must be all-or-nothing.
    while any(w.is_alive() for w in writers):
        summary = reader.get(KEY)
        if summary is not None:
            assert summary == EXPECTED
            observed_complete += 1
    for w in writers:
        w.join(timeout=30)
        assert w.exitcode == 0
    assert reader.malformed == 0, "a torn entry was observed"
    assert reader.get(KEY) == EXPECTED
    assert not list(root.glob("**/*.tmp")), "temp files leaked"


def test_multiprocess_distinct_keys(tmp_path):
    root = tmp_path / "cache"

    keys = [f"{i:02x}" + "f" * 62 for i in range(8)]
    procs = [multiprocessing.Process(target=_put_one, args=(str(root), key))
             for key in keys]
    for p in procs:
        p.start()
    for p in procs:
        p.join(timeout=30)
        assert p.exitcode == 0
    cache = ResultCache(root)
    assert cache.entry_count() == len(keys)
    for key in keys:
        assert cache.get(key) == EXPECTED


def _put_one(root: str, key: str) -> None:
    ResultCache(root).put(key, EXPECTED)


# ----------------------------------------------------------- malformed path


def test_valid_json_missing_summary_is_counted_miss(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put(KEY, EXPECTED)
    path = cache._path(KEY)
    path.write_text(json.dumps({"key": KEY, "created_at": 0.0}))
    assert cache.get(KEY) is None
    assert cache.misses == 1 and cache.malformed == 1 and cache.hits == 0


def test_summary_with_bad_schema_is_counted_miss(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put(KEY, EXPECTED)
    path = cache._path(KEY)
    # "summary" present but not a mapping: the old code raised TypeError.
    path.write_text(json.dumps({"key": KEY, "summary": 42}))
    assert cache.get(KEY) is None
    assert cache.malformed == 1


def test_tagged_result_missing_metrics_is_counted_miss(tmp_path):
    cache = ResultCache(tmp_path)
    path = cache._path(KEY)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(
        {"key": KEY, "summary": {"__kind__": "experiment_result"}}))
    assert cache.get(KEY) is None
    assert cache.malformed == 1


def test_malformed_entry_is_quarantined_not_deleted(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put(KEY, EXPECTED)
    path = cache._path(KEY)
    path.write_text("{ torn garbage")
    assert cache.get(KEY) is None
    assert not path.exists(), "corrupt entry must leave the store"
    corrupt = path.with_suffix(".corrupt")
    assert corrupt.exists(), "corrupt bytes kept for forensics"
    assert KEY not in cache
    # The next read is a clean miss, not another malformed hit.
    assert cache.get(KEY) is None
    assert cache.malformed == 1 and cache.misses == 2


def test_quarantined_entry_can_be_overwritten(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put(KEY, EXPECTED)
    cache._path(KEY).write_text("not json")
    assert cache.get(KEY) is None
    cache.put(KEY, EXPECTED)
    assert cache.get(KEY) == EXPECTED


def test_stats_reports_shape_and_counters(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put(KEY, EXPECTED)
    other = "cd" + "1" * 62
    cache.put(other, EXPECTED)
    cache._path(other).write_text("garbage")
    assert cache.get(KEY) is not None
    assert cache.get(other) is None
    stats = cache.stats()
    assert stats["entries"] == 1
    assert stats["quarantined_files"] == 1
    assert stats["size_bytes"] > 0
    assert stats["hits"] == 1 and stats["misses"] == 1
    assert stats["malformed"] == 1
