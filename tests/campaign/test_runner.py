"""Campaign orchestration: the PR's acceptance criteria live here.

* crash-resume — a campaign killed after N cells and relaunched with
  ``resume=True`` executes only the remaining cells and produces results
  identical to an uninterrupted run;
* cache-hit — re-running an identical sweep performs zero executions and
  reports a 100 % cache-hit ratio; config/seed changes invalidate exactly
  the affected cells;
* quarantine — a persistently failing cell is retried, then reported in the
  summary without failing the other cells.
"""

import dataclasses

import pytest

from repro.campaign import run_campaign
from repro.campaign.journal import ManifestMismatch
from repro.stats.series import METRIC_FIELDS
from tests.campaign import fakes
from tests.campaign.fakes import FakeConfig, InterruptAfter, make_summary

PROTOCOLS = ("alpha", "beta")
XS = (1.0, 2.0)
SEEDS = (1, 2)
GRID_SIZE = len(PROTOCOLS) * len(XS) * len(SEEDS)


@pytest.fixture(autouse=True)
def _reset_call_log():
    fakes.CALLS.clear()


def grid_kwargs(config=FakeConfig(), **over):
    kwargs = dict(runner_name="fake", protocols=PROTOCOLS, xs=XS,
                  seeds=SEEDS, config=config)
    kwargs.update(over)
    return kwargs


def assert_identical(results_a, results_b):
    assert set(results_a) == set(results_b)
    for protocol in results_a:
        a, b = results_a[protocol], results_b[protocol]
        assert a.xs == b.xs
        for x in a.xs:
            for metric in METRIC_FIELDS:
                assert a.metric(x, metric) == b.metric(x, metric)


def test_plain_campaign_matches_direct_loop():
    outcome = run_campaign(fakes.counting_run_one, **grid_kwargs())
    assert outcome.summary["executed"] == GRID_SIZE
    assert not outcome.quarantined
    for protocol in PROTOCOLS:
        series = outcome.results[protocol]
        assert series.xs == list(XS)
        for x in XS:
            stats = series.metric(x, "avg_delay_s")
            assert stats.n == len(SEEDS)
            expected = [make_summary(protocol, x, s, FakeConfig()).avg_delay_s
                        for s in SEEDS]
            assert stats.mean == sum(expected) / len(expected)


class TestCacheHits:
    def test_identical_rerun_executes_nothing(self, tmp_path):
        cache_dir = tmp_path / "cache"
        first = run_campaign(fakes.counting_run_one,
                             **grid_kwargs(cache_dir=cache_dir))
        assert first.summary["executed"] == GRID_SIZE
        fakes.CALLS.clear()
        second = run_campaign(fakes.counting_run_one,
                              **grid_kwargs(cache_dir=cache_dir))
        assert fakes.CALLS == []                      # zero cell executions
        assert second.summary["executed"] == 0
        assert second.summary["cache_hits"] == GRID_SIZE
        assert second.summary["cache_hit_ratio"] == 1.0
        assert_identical(first.results, second.results)

    def test_config_change_invalidates_everything(self, tmp_path):
        cache_dir = tmp_path / "cache"
        run_campaign(fakes.counting_run_one, **grid_kwargs(cache_dir=cache_dir))
        fakes.CALLS.clear()
        changed = run_campaign(
            fakes.counting_run_one,
            **grid_kwargs(config=FakeConfig(scale=2.0), cache_dir=cache_dir))
        assert len(fakes.CALLS) == GRID_SIZE          # all cells re-ran
        assert changed.summary["cache_hits"] == 0

    def test_new_seed_invalidates_only_its_cells(self, tmp_path):
        cache_dir = tmp_path / "cache"
        run_campaign(fakes.counting_run_one, **grid_kwargs(cache_dir=cache_dir))
        fakes.CALLS.clear()
        grown = run_campaign(fakes.counting_run_one,
                             **grid_kwargs(seeds=(1, 2, 3),
                                           cache_dir=cache_dir))
        # Only the seed-3 cells are new: protocols × xs of them.
        assert sorted(fakes.CALLS) == sorted(
            (p, x, 3) for p in PROTOCOLS for x in XS)
        assert grown.summary["cache_hits"] == GRID_SIZE
        assert grown.summary["executed"] == len(PROTOCOLS) * len(XS)

    def test_extra_kwargs_part_of_identity(self, tmp_path):
        cache_dir = tmp_path / "cache"
        run_campaign(fakes.counting_run_one, **grid_kwargs(cache_dir=cache_dir))
        fakes.CALLS.clear()
        run_campaign(fakes.counting_run_one,
                     **grid_kwargs(cache_dir=cache_dir),
                     extra_kwargs={})
        assert fakes.CALLS == []  # empty extras hash like no extras


class TestCrashResume:
    def test_interrupted_campaign_resumes_missing_cells_only(self, tmp_path):
        campaign_dir = tmp_path / "camp"
        baseline = run_campaign(fakes.counting_run_one, **grid_kwargs())

        interrupted = InterruptAfter(limit=3)
        with pytest.raises(KeyboardInterrupt):
            run_campaign(interrupted,
                         **grid_kwargs(campaign_dir=campaign_dir))

        fakes.CALLS.clear()
        resumed = run_campaign(fakes.counting_run_one,
                               **grid_kwargs(campaign_dir=campaign_dir,
                                             resume=True))
        # Only the cells the kill left unsettled re-execute...
        assert len(fakes.CALLS) == GRID_SIZE - 3
        assert resumed.summary["resumed_from_journal"] == 3
        assert resumed.summary["executed"] == GRID_SIZE - 3
        # ...and the reassembled series are identical to an uninterrupted run.
        assert_identical(baseline.results, resumed.results)

    def test_resume_of_complete_campaign_executes_nothing(self, tmp_path):
        campaign_dir = tmp_path / "camp"
        first = run_campaign(fakes.counting_run_one,
                             **grid_kwargs(campaign_dir=campaign_dir))
        fakes.CALLS.clear()
        again = run_campaign(fakes.counting_run_one,
                             **grid_kwargs(campaign_dir=campaign_dir,
                                           resume=True))
        assert fakes.CALLS == []
        assert again.summary["resumed_from_journal"] == GRID_SIZE
        assert_identical(first.results, again.results)

    def test_fresh_run_ignores_journal(self, tmp_path):
        campaign_dir = tmp_path / "camp"
        run_campaign(fakes.counting_run_one,
                     **grid_kwargs(campaign_dir=campaign_dir))
        fakes.CALLS.clear()
        rerun = run_campaign(fakes.counting_run_one,
                             **grid_kwargs(campaign_dir=campaign_dir))
        assert len(fakes.CALLS) == GRID_SIZE
        assert rerun.summary["resumed_from_journal"] == 0

    def test_resume_under_changed_grid_refused(self, tmp_path):
        campaign_dir = tmp_path / "camp"
        run_campaign(fakes.counting_run_one,
                     **grid_kwargs(campaign_dir=campaign_dir))
        with pytest.raises(ManifestMismatch):
            run_campaign(fakes.counting_run_one,
                         **grid_kwargs(seeds=(1, 2, 3),
                                       campaign_dir=campaign_dir,
                                       resume=True))

    def test_journal_and_cache_compose(self, tmp_path):
        """A killed cached campaign resumes from journal AND cache."""
        cache_dir, campaign_dir = tmp_path / "cache", tmp_path / "camp"
        # Warm the cache for the first protocol only.
        run_campaign(fakes.counting_run_one,
                     **grid_kwargs(protocols=("alpha",), cache_dir=cache_dir))
        fakes.CALLS.clear()
        outcome = run_campaign(fakes.counting_run_one,
                               **grid_kwargs(cache_dir=cache_dir,
                                             campaign_dir=campaign_dir))
        assert outcome.summary["cache_hits"] == len(XS) * len(SEEDS)
        assert outcome.summary["executed"] == len(XS) * len(SEEDS)
        assert all(p == "beta" for p, _x, _s in fakes.CALLS)


class TestQuarantine:
    def test_failing_cell_reported_not_fatal(self, tmp_path):
        outcome = run_campaign(
            fakes.failing_run_one,
            **grid_kwargs(protocols=("bad", "good"), max_retries=1,
                          backoff_s=0.001))
        # (bad, 1.0, *) cells fail forever: 2 seeds quarantined.
        assert len(outcome.quarantined) == 2
        assert outcome.summary["quarantined"] == 2
        assert outcome.summary["retries"] == 2
        reported = outcome.summary["quarantined_cells"]
        assert all(c["protocol"] == "bad" and c["x"] == 1.0 for c in reported)
        assert all(c["attempts"] == 2 for c in reported)
        assert all("cursed" in c["error"] for c in reported)
        # The rest of the grid settled: bad@2.0 plus all good cells.
        assert outcome.results["bad"].xs == [2.0]
        assert outcome.results["good"].xs == list(XS)

    def test_quarantined_cells_retry_on_resume(self, tmp_path):
        campaign_dir = tmp_path / "camp"
        run_campaign(fakes.failing_run_one,
                     **grid_kwargs(protocols=("bad", "good"), max_retries=0,
                                   campaign_dir=campaign_dir))
        fakes.CALLS.clear()
        # Same grid, now with a runner that succeeds everywhere: resume
        # replays the clean cells and re-runs only the quarantined ones.
        resumed = run_campaign(fakes.counting_run_one,
                               **grid_kwargs(protocols=("bad", "good"),
                                             campaign_dir=campaign_dir,
                                             resume=True))
        assert sorted(fakes.CALLS) == sorted(
            ("bad", 1.0, s) for s in SEEDS)
        assert not resumed.quarantined
        assert resumed.results["bad"].xs == list(XS)


class TestTelemetry:
    def test_progress_events_cover_every_cell(self):
        events = []
        run_campaign(fakes.counting_run_one, **grid_kwargs(),
                     progress=events.append)
        assert len(events) == GRID_SIZE
        assert events[-1].completed == GRID_SIZE
        assert events[-1].total == GRID_SIZE
        assert all(e.last_source == "run" for e in events)
        assert events[0].last_cell == "alpha/x=1/seed=1"
        assert events[-1].eta_s == 0.0

    def test_summary_shape(self):
        outcome = run_campaign(fakes.counting_run_one, **grid_kwargs())
        summary = outcome.summary
        for field in ("total_cells", "completed", "executed", "cache_hits",
                      "resumed_from_journal", "retries", "quarantined",
                      "elapsed_s", "cells_per_sec", "cache_hit_ratio",
                      "cell_wall_s", "runner", "quarantined_cells"):
            assert field in summary
        assert summary["runner"] == "fake"
        assert summary["cell_wall_s"]["total"] >= 0.0

    def test_parallel_workers_bit_identical(self):
        serial = run_campaign(fakes.counting_run_one, **grid_kwargs())
        parallel = run_campaign(fakes.counting_run_one,
                                **grid_kwargs(workers=2))
        assert_identical(serial.results, parallel.results)
