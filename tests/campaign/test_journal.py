"""Journal + manifest: replay, torn lines, fingerprint guard."""

import pytest

from repro.campaign.journal import CampaignJournal, CellRecord, ManifestMismatch
from tests.campaign.fakes import FakeConfig, make_summary


def record(key="k1", status="done", **kwargs):
    defaults = dict(key=key, protocol="ssaf", x=1.0, seed=1, status=status,
                    summary=make_summary("ssaf", 1.0, 1, FakeConfig()))
    defaults.update(kwargs)
    return CellRecord(**defaults)


def test_append_and_load_roundtrip(tmp_path):
    journal = CampaignJournal(tmp_path)
    r1 = record("k1")
    r2 = record("k2", x=2.0, attempts=3, wall_s=0.5)
    journal.append(r1)
    journal.append(r2)
    loaded = journal.load()
    assert loaded == {"k1": r1, "k2": r2}


def test_later_lines_win(tmp_path):
    journal = CampaignJournal(tmp_path)
    journal.append(record("k1", status="quarantined", summary=None,
                          error="boom"))
    journal.append(record("k1", status="done"))
    assert journal.load()["k1"].status == "done"


def test_torn_trailing_line_skipped(tmp_path):
    journal = CampaignJournal(tmp_path)
    journal.append(record("k1"))
    with open(journal.journal_path, "a") as handle:
        handle.write('{"key": "k2", "protocol": "ssaf", "x"')  # cut mid-write
    loaded = journal.load()
    assert set(loaded) == {"k1"}


def test_empty_journal_loads_empty(tmp_path):
    assert CampaignJournal(tmp_path / "fresh").load() == {}


class TestManifest:
    def test_written_once(self, tmp_path):
        journal = CampaignJournal(tmp_path)
        journal.ensure_manifest({"fingerprint": "f1"}, resume=False)
        assert journal.read_manifest()["fingerprint"] == "f1"

    def test_resume_same_fingerprint_ok(self, tmp_path):
        journal = CampaignJournal(tmp_path)
        journal.ensure_manifest({"fingerprint": "f1"}, resume=False)
        journal.ensure_manifest({"fingerprint": "f1"}, resume=True)

    def test_resume_other_fingerprint_refused(self, tmp_path):
        journal = CampaignJournal(tmp_path)
        journal.ensure_manifest({"fingerprint": "f1"}, resume=False)
        with pytest.raises(ManifestMismatch):
            journal.ensure_manifest({"fingerprint": "f2"}, resume=True)

    def test_fresh_run_over_stale_dir_resets(self, tmp_path):
        journal = CampaignJournal(tmp_path)
        journal.ensure_manifest({"fingerprint": "f1"}, resume=False)
        journal.append(record("k1"))
        journal.ensure_manifest({"fingerprint": "f2"}, resume=False)
        assert journal.read_manifest()["fingerprint"] == "f2"
        assert journal.load() == {}
