"""Journal + manifest: replay, torn lines, fingerprint guard."""

import pytest

from repro.campaign.journal import CampaignJournal, CellRecord, ManifestMismatch
from tests.campaign.fakes import FakeConfig, make_summary


def record(key="k1", status="done", **kwargs):
    defaults = dict(key=key, protocol="ssaf", x=1.0, seed=1, status=status,
                    summary=make_summary("ssaf", 1.0, 1, FakeConfig()))
    defaults.update(kwargs)
    return CellRecord(**defaults)


def test_append_and_load_roundtrip(tmp_path):
    journal = CampaignJournal(tmp_path)
    r1 = record("k1")
    r2 = record("k2", x=2.0, attempts=3, wall_s=0.5)
    journal.append(r1)
    journal.append(r2)
    loaded = journal.load()
    assert loaded == {"k1": r1, "k2": r2}


def test_later_lines_win(tmp_path):
    journal = CampaignJournal(tmp_path)
    journal.append(record("k1", status="quarantined", summary=None,
                          error="boom"))
    journal.append(record("k1", status="done"))
    assert journal.load()["k1"].status == "done"


def test_torn_trailing_line_skipped(tmp_path):
    journal = CampaignJournal(tmp_path)
    journal.append(record("k1"))
    with open(journal.journal_path, "a") as handle:
        handle.write('{"key": "k2", "protocol": "ssaf", "x"')  # cut mid-write
    loaded = journal.load()
    assert set(loaded) == {"k1"}


def test_empty_journal_loads_empty(tmp_path):
    assert CampaignJournal(tmp_path / "fresh").load() == {}


class TestManifest:
    def test_written_once(self, tmp_path):
        journal = CampaignJournal(tmp_path)
        journal.ensure_manifest({"fingerprint": "f1"}, resume=False)
        assert journal.read_manifest()["fingerprint"] == "f1"

    def test_resume_same_fingerprint_ok(self, tmp_path):
        journal = CampaignJournal(tmp_path)
        journal.ensure_manifest({"fingerprint": "f1"}, resume=False)
        journal.ensure_manifest({"fingerprint": "f1"}, resume=True)

    def test_resume_other_fingerprint_refused(self, tmp_path):
        journal = CampaignJournal(tmp_path)
        journal.ensure_manifest({"fingerprint": "f1"}, resume=False)
        with pytest.raises(ManifestMismatch):
            journal.ensure_manifest({"fingerprint": "f2"}, resume=True)

    def test_fresh_run_over_stale_dir_resets(self, tmp_path):
        journal = CampaignJournal(tmp_path)
        journal.ensure_manifest({"fingerprint": "f1"}, resume=False)
        journal.append(record("k1"))
        journal.ensure_manifest({"fingerprint": "f2"}, resume=False)
        assert journal.read_manifest()["fingerprint"] == "f2"
        assert journal.load() == {}


class TestCrashSafety:
    def test_manifest_publish_is_atomic(self, tmp_path, monkeypatch):
        import os
        journal = CampaignJournal(tmp_path)
        journal.write_manifest({"fingerprint": "f1"})

        def failing_replace(src, dst):
            raise OSError("powercut")

        monkeypatch.setattr(os, "replace", failing_replace)
        with pytest.raises(OSError):
            journal.write_manifest({"fingerprint": "f2"})
        monkeypatch.undo()
        # The previous manifest survives intact; no temp debris remains.
        assert journal.read_manifest() == {"fingerprint": "f1"}
        assert list(tmp_path.glob("*.tmp")) == []

    def test_append_fsyncs_by_default(self, tmp_path, monkeypatch):
        import os
        synced = []
        real_fsync = os.fsync
        monkeypatch.setattr(os, "fsync",
                            lambda fd: (synced.append(fd), real_fsync(fd)))
        CampaignJournal(tmp_path).append(record("k1"))
        assert synced  # the record hit the disk barrier

    def test_fsync_false_skips_the_barrier_but_still_flushes(self, tmp_path,
                                                             monkeypatch):
        import os
        journal = CampaignJournal(tmp_path, fsync=False)
        synced = []
        real_fsync = os.fsync
        monkeypatch.setattr(os, "fsync",
                            lambda fd: (synced.append(fd), real_fsync(fd)))
        journal.append(record("k1"))
        assert synced == []
        # Still durable enough to read back immediately.
        assert set(CampaignJournal(tmp_path).load()) == {"k1"}


class TestSummary:
    def test_write_read_roundtrip(self, tmp_path):
        journal = CampaignJournal(tmp_path)
        assert journal.read_summary() is None
        journal.write_summary({"completed": 8, "dist": {"steals": 2}})
        assert journal.read_summary() == {"completed": 8,
                                          "dist": {"steals": 2}}

    def test_unjsonable_values_are_stringified(self, tmp_path):
        journal = CampaignJournal(tmp_path)
        journal.write_summary({"path": tmp_path})  # Path is not JSON-safe
        assert journal.read_summary() == {"path": str(tmp_path)}

    def test_reset_removes_summary(self, tmp_path):
        journal = CampaignJournal(tmp_path)
        journal.write_summary({"completed": 1})
        journal.reset()
        assert journal.read_summary() is None

    def test_runner_persists_summary_json(self, tmp_path):
        from repro.campaign import run_campaign
        from tests.campaign import fakes
        outcome = run_campaign(
            fakes.counting_run_one, runner_name="fake",
            protocols=("alpha",), xs=(1.0,), seeds=(1,),
            config=FakeConfig(), campaign_dir=tmp_path)
        persisted = CampaignJournal(tmp_path).read_summary()
        assert persisted is not None
        assert persisted["runner"] == "fake"
        assert persisted["completed"] == outcome.summary["completed"] == 1
