"""``repro cache`` subcommand: stats reporting and age-based gc."""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.campaign.cache import ResultCache
from repro.campaign.cache_cli import main as cache_main, parse_age
from tests.campaign.fakes import FakeConfig, make_summary

KEY_A = "ab" + "0" * 62
KEY_B = "cd" + "1" * 62
SUMMARY = make_summary("ssaf", 1.0, 1, FakeConfig())


def _age(path, seconds: float) -> None:
    old = time.time() - seconds
    os.utime(path, (old, old))


@pytest.mark.parametrize("text, expected", [
    ("90", 90.0), ("45s", 45.0), ("30m", 1800.0), ("12h", 43200.0),
    ("7d", 604800.0), ("2w", 1209600.0), ("1.5h", 5400.0),
])
def test_parse_age(text, expected):
    assert parse_age(text) == expected


def test_parse_age_rejects_garbage():
    import argparse
    with pytest.raises(argparse.ArgumentTypeError):
        parse_age("soon")
    with pytest.raises(argparse.ArgumentTypeError):
        parse_age("-5m")


def test_stats_human_and_json(tmp_path, capsys):
    cache = ResultCache(tmp_path)
    cache.put(KEY_A, SUMMARY)
    rc = cache_main(["stats", "--cache-dir", str(tmp_path)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "entries:       1" in out

    rc = cache_main(["stats", "--cache-dir", str(tmp_path), "--json"])
    assert rc == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["entries"] == 1
    assert payload["size_bytes"] > 0


def test_gc_prunes_only_old_entries(tmp_path, capsys):
    cache = ResultCache(tmp_path)
    cache.put(KEY_A, SUMMARY)
    cache.put(KEY_B, SUMMARY)
    _age(cache._path(KEY_A), 10 * 86400)  # 10 days old
    rc = cache_main(["gc", "--older-than", "7d", "--cache-dir", str(tmp_path)])
    assert rc == 0
    assert "removed 1" in capsys.readouterr().out
    assert cache.get(KEY_A) is None
    assert cache.get(KEY_B) == SUMMARY


def test_gc_always_collects_quarantined_files(tmp_path, capsys):
    cache = ResultCache(tmp_path)
    cache.put(KEY_A, SUMMARY)
    cache._path(KEY_A).write_text("garbage")
    assert cache.get(KEY_A) is None  # quarantines to .corrupt
    corrupt = cache._path(KEY_A).with_suffix(".corrupt")
    assert corrupt.exists()
    rc = cache_main(["gc", "--older-than", "365d",
                     "--cache-dir", str(tmp_path)])
    assert rc == 0
    assert not corrupt.exists()


def test_gc_dry_run_removes_nothing(tmp_path, capsys):
    cache = ResultCache(tmp_path)
    cache.put(KEY_A, SUMMARY)
    _age(cache._path(KEY_A), 10 * 86400)
    rc = cache_main(["gc", "--older-than", "7d", "--dry-run",
                     "--cache-dir", str(tmp_path)])
    assert rc == 0
    assert "would remove 1" in capsys.readouterr().out
    assert cache.get(KEY_A) == SUMMARY


def test_gc_reports_kept(tmp_path, capsys):
    cache = ResultCache(tmp_path)
    cache.put(KEY_A, SUMMARY)
    cache.put(KEY_B, SUMMARY)
    report = cache.gc(older_than_s=3600.0)
    assert report == {"removed": 0, "freed_bytes": 0, "kept": 2,
                      "protected": 0}
