"""CLI integration: the campaign subcommand and campaign flags on figs."""

import json

import pytest

import repro.experiments.cli as cli
from repro.campaign import CampaignSpec
from tests.campaign import fakes
from tests.campaign.fakes import FakeConfig


@pytest.fixture(autouse=True)
def _reset_call_log():
    fakes.CALLS.clear()


@pytest.fixture
def fake_spec(monkeypatch):
    spec = CampaignSpec(name="fig1", run_one=fakes.counting_run_one,
                        protocols=("counter1", "ssaf"), xs=(1.0, 2.0),
                        seeds=(1,), config=FakeConfig())
    monkeypatch.setattr(cli, "_campaign_spec",
                        lambda name: spec if name in cli.EXPERIMENTS else None)
    return spec


def test_campaign_requires_target(capsys):
    assert cli.main(["campaign"]) == 2
    assert "usage" in capsys.readouterr().err


def test_campaign_rejects_unknown_target(fake_spec, capsys, monkeypatch):
    monkeypatch.setattr(cli, "_campaign_spec", lambda name: None)
    assert cli.main(["campaign", "fig2"]) == 2
    assert "cannot run as a campaign" in capsys.readouterr().err


def test_campaign_end_to_end(fake_spec, tmp_path, capsys):
    cache_dir = tmp_path / "cache"
    campaign_dir = tmp_path / "camp"
    summary_path = tmp_path / "telemetry.json"
    argv = ["campaign", "fig1",
            "--cache-dir", str(cache_dir),
            "--campaign-dir", str(campaign_dir),
            "--summary-json", str(summary_path)]
    assert cli.main(argv) == 0
    out = capsys.readouterr().out
    assert "campaign summary" in out
    assert "cells: 4/4" in out
    assert (campaign_dir / "journal.jsonl").exists()
    assert (campaign_dir / "manifest.json").exists()
    summary = json.loads(summary_path.read_text())
    assert summary["executed"] == 4

    # Second identical invocation: pure cache, 100% hit ratio reported.
    fakes.CALLS.clear()
    assert cli.main(argv) == 0
    assert fakes.CALLS == []
    out = capsys.readouterr().out
    assert "cache hit ratio: 100%" in out


def test_campaign_progress_on_stderr(fake_spec, tmp_path, capsys):
    assert cli.main(["campaign", "fig1",
                     "--campaign-dir", str(tmp_path / "c"),
                     "--no-cache"]) == 0
    err = capsys.readouterr().err
    assert "[4/4]" in err


def test_campaign_quiet_silences_progress(fake_spec, tmp_path, capsys):
    assert cli.main(["campaign", "fig1", "--quiet",
                     "--campaign-dir", str(tmp_path / "c"),
                     "--no-cache"]) == 0
    assert "[4/4]" not in capsys.readouterr().err


def test_fig_command_with_cache_flags(fake_spec, tmp_path, capsys):
    argv = ["fig1", "--cache-dir", str(tmp_path / "cache"),
            "--csv", str(tmp_path / "out.csv")]
    assert cli.main(argv) == 0
    assert (tmp_path / "out.csv").exists()
    fakes.CALLS.clear()
    assert cli.main(argv) == 0
    assert fakes.CALLS == []  # second run served from cache


def test_fig_command_resume_flag(fake_spec, tmp_path):
    argv = ["fig1", "--campaign-dir", str(tmp_path / "camp"), "--no-cache"]
    assert cli.main(argv) == 0
    fakes.CALLS.clear()
    assert cli.main(argv + ["--resume"]) == 0
    assert fakes.CALLS == []  # all cells replayed from the journal


@pytest.fixture
def faults_spec(monkeypatch):
    spec = CampaignSpec(name="fig1", run_one=fakes.faults_run_one,
                        protocols=("counter1", "ssaf"), xs=(1.0, 2.0),
                        seeds=(1,), config=FakeConfig())
    monkeypatch.setattr(cli, "_campaign_spec",
                        lambda name: spec if name == "fig1" else None)
    return spec


@pytest.fixture
def plan_path(tmp_path):
    from repro.faults import FaultPlan, PacketCorruption
    path = tmp_path / "plan.json"
    FaultPlan(name="smoke-plan",
              faults=(PacketCorruption(probability=0.5),)).save(path)
    return str(path)


def test_campaign_faults_axis(faults_spec, plan_path, tmp_path):
    assert cli.main(["campaign", "fig1", "--faults", plan_path, "--quiet",
                     "--campaign-dir", str(tmp_path / "c"),
                     "--no-cache"]) == 0
    assert fakes.CALLS
    assert all(call[3] == "smoke-plan" for call in fakes.CALLS)


def test_fig_command_faults_routes_through_campaign(faults_spec, plan_path):
    assert cli.main(["fig1", "--faults", plan_path, "--no-cache"]) == 0
    assert fakes.CALLS
    assert all(call[3] == "smoke-plan" for call in fakes.CALLS)


def test_faulted_cells_get_distinct_cache_keys(faults_spec, plan_path,
                                               tmp_path):
    cache = str(tmp_path / "cache")
    assert cli.main(["fig1", "--cache-dir", cache]) == 0
    baseline = [c for c in fakes.CALLS]
    assert all(call[3] is None for call in baseline)
    fakes.CALLS.clear()
    # Same cache, now with a plan: every cell must miss and re-execute.
    assert cli.main(["fig1", "--cache-dir", cache,
                     "--faults", plan_path]) == 0
    assert len(fakes.CALLS) == len(baseline)
    assert all(call[3] == "smoke-plan" for call in fakes.CALLS)
