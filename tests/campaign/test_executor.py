"""Fault-tolerant executor: retries, quarantine, timeouts, pool recovery."""

import pytest

from repro.campaign.executor import (
    Cell,
    CellFailure,
    ExecutorConfig,
    FaultTolerantExecutor,
)
from tests.campaign import fakes
from tests.campaign.fakes import FakeConfig, make_summary


def collect():
    done, quarantined = [], []
    return done, quarantined, (lambda c, s, a, w: done.append((c, s, a))), \
        quarantined.append


def cells(*coords):
    return [Cell(key=f"k{i}", protocol=p, x=x, seed=s)
            for i, (p, x, s) in enumerate(coords)]


@pytest.fixture(autouse=True)
def _reset_call_log():
    fakes.CALLS.clear()


class TestSerial:
    def test_all_cells_succeed(self):
        done, quarantined, on_done, on_q = collect()
        ex = FaultTolerantExecutor(fakes.counting_run_one, FakeConfig(),
                                   executor_config=ExecutorConfig())
        batch = cells(("a", 1.0, 1), ("a", 2.0, 1), ("b", 1.0, 2))
        ex.run(batch, on_done, on_q)
        assert len(done) == 3 and not quarantined
        assert done[0][1] == make_summary("a", 1.0, 1, FakeConfig())
        assert all(attempts == 1 for _c, _s, attempts in done)

    def test_failing_cell_retried_then_quarantined(self):
        done, quarantined, on_done, on_q = collect()
        retries = []
        ex = FaultTolerantExecutor(
            fakes.failing_run_one, FakeConfig(),
            executor_config=ExecutorConfig(max_retries=2, backoff_s=0.001),
            on_retry=lambda c, a, e: retries.append((c, a)))
        batch = cells(("bad", 1.0, 1), ("good", 1.0, 1))
        ex.run(batch, on_done, on_q)
        # Cursed cell: 1 try + 2 retries, then quarantine; neighbour untouched.
        assert [c.protocol for c, _s, _a in done] == ["good"]
        assert len(quarantined) == 1
        failure = quarantined[0]
        assert isinstance(failure, CellFailure)
        assert failure.attempts == 3
        assert "cursed" in failure.error
        assert len(retries) == 2
        assert fakes.CALLS.count(("bad", 1.0, 1)) == 3

    def test_zero_retries_quarantines_immediately(self):
        done, quarantined, on_done, on_q = collect()
        ex = FaultTolerantExecutor(
            fakes.failing_run_one, FakeConfig(),
            executor_config=ExecutorConfig(max_retries=0))
        ex.run(cells(("bad", 1.0, 1)), on_done, on_q)
        assert quarantined[0].attempts == 1
        assert fakes.CALLS.count(("bad", 1.0, 1)) == 1

    def test_keyboard_interrupt_propagates(self):
        done, quarantined, on_done, on_q = collect()
        runner = fakes.InterruptAfter(limit=1)
        ex = FaultTolerantExecutor(runner, FakeConfig(),
                                   executor_config=ExecutorConfig())
        with pytest.raises(KeyboardInterrupt):
            ex.run(cells(("a", 1.0, 1), ("a", 2.0, 1)), on_done, on_q)
        assert len(done) == 1


class TestProcessPool:
    def test_parallel_matches_serial_summaries(self):
        done, quarantined, on_done, on_q = collect()
        ex = FaultTolerantExecutor(
            fakes.counting_run_one, FakeConfig(),
            executor_config=ExecutorConfig(max_workers=2))
        batch = cells(("a", 1.0, 1), ("a", 2.0, 1), ("b", 1.0, 1), ("b", 2.0, 1))
        ex.run(batch, on_done, on_q)
        assert not quarantined
        by_cell = {(c.protocol, c.x, c.seed): s for c, s, _a in done}
        for cell in batch:
            assert by_cell[(cell.protocol, cell.x, cell.seed)] == \
                make_summary(cell.protocol, cell.x, cell.seed, FakeConfig())

    def test_exception_in_worker_quarantined_not_fatal(self):
        done, quarantined, on_done, on_q = collect()
        ex = FaultTolerantExecutor(
            fakes.failing_run_one, FakeConfig(),
            executor_config=ExecutorConfig(max_workers=2, max_retries=1,
                                           backoff_s=0.001))
        ex.run(cells(("bad", 1.0, 1), ("good", 1.0, 1), ("good", 2.0, 2)),
               on_done, on_q)
        assert len(done) == 2
        assert len(quarantined) == 1
        assert quarantined[0].attempts == 2

    def test_timeout_quarantines_hung_cell_and_spares_the_rest(self):
        done, quarantined, on_done, on_q = collect()
        ex = FaultTolerantExecutor(
            fakes.sleepy_run_one, FakeConfig(),
            executor_config=ExecutorConfig(max_workers=2, timeout_s=0.5,
                                           max_retries=1, backoff_s=0.001,
                                           poll_s=0.05))
        batch = cells(("slow", 1.0, 1), ("fast", 1.0, 1), ("fast", 2.0, 1),
                      ("fast", 3.0, 1))
        ex.run(batch, on_done, on_q)
        assert {c.protocol for c, _s, _a in done} == {"fast"}
        assert len(done) == 3
        assert len(quarantined) == 1
        assert "timeout" in quarantined[0].error
        assert ex.pool_rebuilds >= 1

    def test_broken_pool_recovered_and_cell_retried(self, tmp_path):
        done, quarantined, on_done, on_q = collect()
        config = FakeConfig(flag_dir=str(tmp_path))
        ex = FaultTolerantExecutor(
            fakes.dying_run_one, config,
            executor_config=ExecutorConfig(max_workers=2, max_retries=2,
                                           backoff_s=0.001, poll_s=0.05))
        batch = cells(("dies", 1.0, 1), ("ok", 1.0, 1), ("ok", 2.0, 1))
        ex.run(batch, on_done, on_q)
        # The dying cell's first attempt nukes its worker; the retry (new
        # pool, flag file present) succeeds.  Nothing is quarantined.
        assert not quarantined
        assert len(done) == 3
        assert ex.pool_rebuilds >= 1
        dies = [(c, a) for c, _s, a in done if c.protocol == "dies"]
        assert dies[0][1] >= 2
