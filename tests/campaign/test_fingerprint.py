"""Content addressing: stability, sensitivity, canonical forms."""

import numpy as np
import pytest

from repro.campaign.fingerprint import (
    campaign_fingerprint,
    canonicalize,
    cell_key,
    runner_name_of,
)
from tests.campaign.fakes import FakeConfig, make_summary


class TestCanonicalize:
    def test_scalars_pass_through(self):
        assert canonicalize(None) is None
        assert canonicalize(True) is True
        assert canonicalize(7) == 7
        assert canonicalize("x") == "x"

    def test_floats_exact(self):
        assert canonicalize(0.1) == {"__float__": "0.1"}
        assert canonicalize(0.1) != canonicalize(0.1 + 1e-12)

    def test_dataclass_tagged_with_type(self):
        a = canonicalize(FakeConfig(scale=1.0))
        assert a["__dataclass__"] == "FakeConfig"
        assert "scale" in a["fields"]

    def test_ndarray_and_numpy_scalars(self):
        arr = canonicalize(np.array([1.0, 2.0]))
        assert "__ndarray__" in arr
        assert canonicalize(np.int64(3)) == 3

    def test_mapping_order_independent(self):
        assert canonicalize({"a": 1, "b": 2}) == canonicalize({"b": 2, "a": 1})

    def test_unknown_objects_never_crash(self):
        class Weird:
            def __repr__(self):
                return "Weird()"
        assert canonicalize(Weird()) == {"__repr__": "Weird()"}


class TestCellKey:
    def test_stable_across_calls(self):
        config = FakeConfig()
        k1 = cell_key("fig1", "ssaf", 1.0, 1, config)
        k2 = cell_key("fig1", "ssaf", 1.0, 1, config)
        assert k1 == k2
        assert len(k1) == 64

    @pytest.mark.parametrize("change", [
        dict(runner="fig3"),
        dict(protocol="counter1"),
        dict(x=2.0),
        dict(seed=2),
        dict(config=FakeConfig(scale=2.0)),
        dict(extra={"failure_fraction": 0.05}),
    ])
    def test_any_coordinate_changes_the_key(self, change):
        base = dict(runner="fig1", protocol="ssaf", x=1.0, seed=1,
                    config=FakeConfig(), extra=None)
        varied = {**base, **change}
        k_base = cell_key(base["runner"], base["protocol"], base["x"],
                          base["seed"], base["config"], base["extra"])
        k_varied = cell_key(varied["runner"], varied["protocol"], varied["x"],
                            varied["seed"], varied["config"], varied["extra"])
        assert k_base != k_varied

    def test_version_is_part_of_the_key(self, monkeypatch):
        import repro
        k1 = cell_key("fig1", "ssaf", 1.0, 1, FakeConfig())
        monkeypatch.setattr(repro, "__version__", "999.0.0")
        k2 = cell_key("fig1", "ssaf", 1.0, 1, FakeConfig())
        assert k1 != k2


class TestCampaignFingerprint:
    def test_grid_shape_matters(self):
        config = FakeConfig()
        f1 = campaign_fingerprint("fig1", ("a", "b"), (1.0,), (1, 2), config)
        f2 = campaign_fingerprint("fig1", ("a", "b"), (1.0,), (1, 2, 3), config)
        f3 = campaign_fingerprint("fig1", ("a",), (1.0,), (1, 2), config)
        assert len({f1, f2, f3}) == 3

    def test_runner_name_of(self):
        assert runner_name_of(make_summary).endswith("fakes.make_summary")
