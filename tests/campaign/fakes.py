"""Deterministic fake runners for campaign tests.

Everything here is module-level (picklable by reference) so the same fakes
drive both the inline serial executor and real worker processes.  The fake
"simulation" is a pure function of its cell coordinates and config, which
makes bit-identical-result assertions exact and cheap.
"""

from __future__ import annotations

import os
import time
import zlib
from dataclasses import dataclass
from pathlib import Path

from repro.stats.metrics import MetricsSummary


@dataclass(frozen=True)
class FakeConfig:
    """Stands in for an experiment config; ``scale`` is the knob tests
    change to exercise cache invalidation."""
    scale: float = 1.0
    #: Directory for cross-process coordination (flag files); "" disables.
    flag_dir: str = ""


def make_summary(protocol: str, x: float, seed: int,
                 config: FakeConfig) -> MetricsSummary:
    # crc32, not hash(): builtin hashing is salted per interpreter, and
    # dist workers are fresh processes — results must agree bit-for-bit
    # across process boundaries.
    base = zlib.crc32(protocol.encode()) % 97 / 100.0
    return MetricsSummary(
        generated=100,
        delivered=90 + seed,
        delivery_ratio=0.9 + seed / 100.0,
        avg_delay_s=(x * 0.1 + seed * 0.013 + base) * config.scale,
        avg_hops=3.0 + x / 10.0,
        mac_packets=int(x * 100) + seed,
    )


#: In-process call log: (protocol, x, seed) per execution.  Only meaningful
#: for serial (workers <= 1) runs, where cells execute in this interpreter.
CALLS: list[tuple] = []


def counting_run_one(protocol, x, seed, config):
    CALLS.append((protocol, x, seed))
    return make_summary(protocol, x, seed, config)


def faults_run_one(protocol, x, seed, config, faults=None):
    """Records which FaultPlan (by name) each cell executed under."""
    CALLS.append((protocol, x, seed,
                  None if faults is None else faults.name))
    return make_summary(protocol, x, seed, config)


def observed_run_one(protocol, x, seed, config, obs=None):
    """Counts one fake delivery into the obs bundle when one is attached."""
    CALLS.append((protocol, x, seed))
    if obs is not None:
        obs.registry.counter("fake_cells_total",
                             labelnames=("protocol",)).labels(protocol).inc()
        obs.on_deliver(0.5, node=1,
                       uid=("data", 0, seed), delay_s=0.1 * x, hops=2)
    return make_summary(protocol, x, seed, config)


def failing_run_one(protocol, x, seed, config):
    """Raises forever for the (bad, 1.0, *) cells; succeeds elsewhere."""
    CALLS.append((protocol, x, seed))
    if protocol == "bad" and x == 1.0:
        raise ValueError(f"cell ({protocol}, {x}, {seed}) is cursed")
    return make_summary(protocol, x, seed, config)


def sleepy_run_one(protocol, x, seed, config):
    """Hangs on the (slow, 1.0, *) cells — for timeout tests (process mode)."""
    if protocol == "slow" and x == 1.0:
        time.sleep(60.0)
    return make_summary(protocol, x, seed, config)


def slowish_run_one(protocol, x, seed, config):
    """Takes ~0.3 s per cell — long enough for a lease-contention test to
    SIGKILL a worker mid-cell, short enough to keep the suite fast."""
    time.sleep(0.3)
    return make_summary(protocol, x, seed, config)


def dying_run_one(protocol, x, seed, config):
    """Kills its worker process hard on the *first* attempt of each
    (dies, *, *) cell, then succeeds — for BrokenProcessPool recovery."""
    if protocol == "dies":
        flag = Path(config.flag_dir) / f"died-{x:g}-{seed}"
        if not flag.exists():
            flag.write_text("x")
            os._exit(13)
    return make_summary(protocol, x, seed, config)


class InterruptAfter:
    """Serial-mode runner that simulates a mid-campaign kill: raises
    ``KeyboardInterrupt`` once ``limit`` cells have completed."""

    def __init__(self, limit: int):
        self.limit = limit
        self.calls = 0

    def __call__(self, protocol, x, seed, config):
        if self.calls >= self.limit:
            raise KeyboardInterrupt
        self.calls += 1
        return make_summary(protocol, x, seed, config)
