"""Campaign telemetry: wall-time distribution stats in the summary."""

from __future__ import annotations

import pytest

from repro.campaign.telemetry import CampaignTelemetry


def telemetry_with_walls(walls):
    telemetry = CampaignTelemetry(total=len(walls))
    for wall in walls:
        telemetry.record("run", wall)
    return telemetry


class TestCellWallStats:
    def test_empty_campaign_all_zero(self):
        stats = CampaignTelemetry(total=0).summary()["cell_wall_s"]
        assert stats == {"count": 0, "mean": 0.0, "min": 0.0, "max": 0.0,
                         "p50": 0.0, "p90": 0.0, "p99": 0.0, "total": 0.0}

    def test_count_mean_min_max_total(self):
        stats = telemetry_with_walls([3.0, 1.0, 2.0]).summary()["cell_wall_s"]
        assert stats["count"] == 3
        assert stats["mean"] == pytest.approx(2.0)
        assert stats["min"] == 1.0 and stats["max"] == 3.0
        assert stats["total"] == pytest.approx(6.0)

    def test_percentiles_on_known_distribution(self):
        # 100 cells with walls 0.01..1.00 — nearest-rank percentiles land
        # exactly on the expected order statistics.
        walls = [i / 100 for i in range(1, 101)]
        stats = telemetry_with_walls(walls).summary()["cell_wall_s"]
        assert stats["p50"] == pytest.approx(0.51)
        assert stats["p90"] == pytest.approx(0.91)
        assert stats["p99"] == pytest.approx(1.00)

    def test_percentiles_ordered(self):
        walls = [0.1, 9.0, 0.2, 0.3, 4.0, 0.1, 0.2]
        stats = telemetry_with_walls(walls).summary()["cell_wall_s"]
        assert stats["min"] <= stats["p50"] <= stats["p90"] \
            <= stats["p99"] <= stats["max"]

    def test_single_cell_percentiles_collapse(self):
        stats = telemetry_with_walls([0.7]).summary()["cell_wall_s"]
        assert stats["p50"] == stats["p90"] == stats["p99"] == 0.7

    def test_p50_matches_historical_median(self):
        # The old summary reported walls[len // 2]; p50 must not move.
        walls = [5.0, 1.0, 3.0, 2.0, 4.0]
        stats = telemetry_with_walls(walls).summary()["cell_wall_s"]
        assert stats["p50"] == sorted(walls)[len(walls) // 2]

    def test_only_executed_cells_counted(self):
        telemetry = CampaignTelemetry(total=4)
        telemetry.record("run", 2.0)
        telemetry.record("cache")
        telemetry.record("journal")
        telemetry.record("quarantined")
        stats = telemetry.summary()["cell_wall_s"]
        assert stats["count"] == 1 and stats["total"] == 2.0
