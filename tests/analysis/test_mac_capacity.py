"""MAC saturation behaviour against first-principles bounds.

A saturated CSMA broadcast channel can carry at most one frame per
(DIFS + mean backoff + airtime) cycle, and at least the collision-discounted
fraction of that.  Simulated saturation throughput must land inside those
bounds — a substrate-level sanity check underneath every figure.
"""

import pytest

from repro.mac.csma import MacConfig
from repro.net.packet import Packet, PacketKind
from tests.conftest import line_positions, make_mac_stack

N_SENDERS = 4
DURATION = 5.0
SIZE = 512


def saturate(ctx, mac, receiver_got):
    """Keep the MAC queue non-empty forever (refill on each completion)."""
    seq = [0]

    def refill(*_args):
        while mac.send(Packet(kind=PacketKind.DATA, origin=mac.node_id,
                              seq=seq[0], size_bytes=SIZE)):
            seq[0] += 1
            if len(mac.queue) >= 2:
                break

    mac.sent.connect(refill)
    refill()


class TestSaturationThroughput:
    def test_throughput_within_theory_bounds(self, ctx):
        config = MacConfig()
        # Senders clustered around one receiver, all mutually in range.
        channel, radios, macs = make_mac_stack(
            ctx, line_positions(N_SENDERS + 1, spacing=30.0), config)
        got = []
        macs[N_SENDERS].to_net.connect(lambda p, rx: got.append(p))
        for mac in macs[:N_SENDERS]:
            saturate(ctx, mac, got)
        ctx.simulator.run(until=DURATION)

        airtime = config.airtime_s(SIZE + 24)
        # Hard ceiling: zero backoff, no collisions — one frame per
        # DIFS + airtime.  Nominal floor: a single saturated sender paying
        # the full mean contention window each cycle, discounted 2x for
        # collisions and CW growth.
        ceiling_fps = 1.0 / (config.difs_s + airtime)
        nominal = 1.0 / (config.difs_s
                         + config.cw_min_slots / 2 * config.slot_s + airtime)

        measured_fps = len(got) / DURATION
        assert measured_fps <= ceiling_fps * 1.01
        assert measured_fps >= nominal * 0.5

    def test_airtime_conservation(self, ctx):
        # Total airtime of delivered frames cannot exceed wall-clock time —
        # the medium is a single resource.
        config = MacConfig()
        channel, radios, macs = make_mac_stack(
            ctx, line_positions(N_SENDERS + 1, spacing=30.0), config)
        got = []
        macs[N_SENDERS].to_net.connect(lambda p, rx: got.append(p))
        for mac in macs[:N_SENDERS]:
            saturate(ctx, mac, got)
        ctx.simulator.run(until=DURATION)
        airtime = config.airtime_s(SIZE + 24)
        assert channel.tx_count * airtime <= DURATION * 1.01

    def test_queue_drops_under_overload(self, ctx):
        # A single sender offered far beyond capacity must drop at the queue,
        # not inflate delay unboundedly.
        config = MacConfig(queue_capacity=8)
        channel, radios, macs = make_mac_stack(ctx, line_positions(2, spacing=50.0), config)
        accepted = refused = 0
        for seq in range(200):
            if macs[0].send(Packet(kind=PacketKind.DATA, origin=0, seq=seq,
                                   size_bytes=SIZE)):
                accepted += 1
            else:
                refused += 1
        assert refused > 0
        assert accepted <= 9  # one in service + capacity
        ctx.simulator.run()
        assert macs[0].queue.dropped == refused  # every refusal was counted
