"""Theory vs simulation: the simulator must match the closed forms."""

import numpy as np
import pytest

from repro.analysis.theory import (
    counter1_relay_bound,
    expected_election_delay,
    free_space_range_m,
    tie_probability,
    uniform_win_probabilities,
)


class TestUniformWinProbabilities:
    def test_equal_bounds_equal_chances(self):
        probs = uniform_win_probabilities([1.0, 1.0, 1.0, 1.0])
        assert probs == pytest.approx([0.25] * 4, abs=1e-3)

    def test_two_candidates_closed_form(self):
        # X ~ U(0,a), Y ~ U(0,b), a <= b: P(X < Y) = 1 − a/(2b).
        a, b = 0.5, 1.0
        probs = uniform_win_probabilities([a, b])
        assert probs[0] == pytest.approx(1 - a / (2 * b), abs=1e-3)

    def test_shorter_bound_always_favoured(self):
        probs = uniform_win_probabilities([0.2, 0.6, 1.0])
        assert probs[0] > probs[1] > probs[2]

    def test_matches_monte_carlo(self):
        bounds = [0.3, 0.5, 0.8, 1.0]
        rng = np.random.default_rng(0)
        draws = rng.uniform(0, 1, size=(200_000, 4)) * np.asarray(bounds)
        empirical = np.bincount(np.argmin(draws, axis=1), minlength=4) / 200_000
        theory = uniform_win_probabilities(bounds)
        assert np.allclose(theory, empirical, atol=0.01)

    def test_single_candidate(self):
        assert uniform_win_probabilities([0.5]) == [1.0]

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            uniform_win_probabilities([])
        with pytest.raises(ValueError):
            uniform_win_probabilities([1.0, 0.0])


class TestTieProbability:
    def test_matches_monte_carlo(self):
        lam, settle, k = 0.05, 0.004, 6
        rng = np.random.default_rng(1)
        draws = np.sort(rng.uniform(0, lam, size=(100_000, k)), axis=1)
        empirical = np.mean(draws[:, 1] - draws[:, 0] < settle)
        assert tie_probability(k, lam, settle) == pytest.approx(empirical, abs=0.01)

    def test_grows_with_candidates(self):
        assert tie_probability(10, 0.05, 0.002) > tie_probability(3, 0.05, 0.002)

    def test_shrinks_with_lambda(self):
        # The paper's λ tradeoff, analytically.
        assert tie_probability(5, 0.1, 0.002) < tie_probability(5, 0.02, 0.002)

    def test_edges(self):
        assert tie_probability(1, 0.05, 0.002) == 0.0
        assert tie_probability(4, 0.05, 0.05) == 1.0


class TestExpectedElectionDelay:
    def test_matches_monte_carlo(self):
        rng = np.random.default_rng(2)
        draws = rng.uniform(0, 0.05, size=(200_000, 7)).min(axis=1)
        assert expected_election_delay(7, 0.05) == pytest.approx(draws.mean(), rel=0.02)

    def test_more_candidates_faster(self):
        assert expected_election_delay(10, 0.05) < expected_election_delay(2, 0.05)

    def test_invalid(self):
        with pytest.raises(ValueError):
            expected_election_delay(0, 0.05)


class TestFreeSpaceRange:
    def test_inverts_the_link_budget(self):
        from repro.phy.propagation import FreeSpace, range_to_threshold_dbm

        for target in (100.0, 250.0, 700.0):
            threshold = range_to_threshold_dbm(FreeSpace(), 15.0, target)
            assert free_space_range_m(15.0, threshold) == pytest.approx(target, rel=1e-6)

    def test_more_power_more_range(self):
        assert free_space_range_m(20.0, -64.0) > free_space_range_m(10.0, -64.0)


class TestRelayBound:
    def test_simulator_stays_within_bounds(self):
        from tests.conftest import line_network

        for n in (3, 5, 8):
            net = line_network("counter1", n=n)
            net.protocols[0].send_data(n - 1)
            net.run(until=5.0)
            low, high = counter1_relay_bound(n)
            assert low <= net.channel.tx_count_by_kind["data"] <= high

    def test_invalid(self):
        with pytest.raises(ValueError):
            counter1_relay_bound(1)


class TestElectionMatchesTheory:
    def test_simulated_winner_distribution(self):
        """Run many standalone elections with per-candidate uniform bounds
        and compare the winner distribution to the exact probabilities."""
        from repro.core.backoff import BackoffInput, FunctionBackoff
        from repro.core.election import ElectionConfig, ElectionNode
        from repro.sim.components import SimContext
        from repro.sim.engine import Simulator
        from repro.sim.rng import RandomStreams
        from tests.conftest import line_positions, make_mac_stack

        bounds = {1: 0.02, 2: 0.04, 3: 0.08}
        rounds = 150
        wins = {1: 0, 2: 0, 3: 0}
        for seed in range(rounds):
            ctx = SimContext(Simulator(), RandomStreams(seed))
            channel, radios, macs = make_mac_stack(ctx, line_positions(4, spacing=20.0))

            def observe_factory(node_id, ctx=ctx):
                rng = ctx.streams.stream(f"obs{node_id}")
                def observe(packet, rx):
                    return BackoffInput(rng=rng, metric=bounds[node_id])
                return observe

            policy = FunctionBackoff(
                fn=lambda obs: float(obs.rng.uniform(0.0, obs.metric)))
            config = ElectionConfig(policy=policy, use_arbiter=True)
            nodes = [ElectionNode(ctx, i, mac, config, candidate=(i != 0),
                                  observe=observe_factory(i) if i else None)
                     for i, mac in enumerate(macs)]
            uid = nodes[0].trigger()
            ctx.simulator.run(until=1.0)
            winner = nodes[0].leader_of(uid)
            assert winner in wins
            wins[winner] += 1

        theory = uniform_win_probabilities([bounds[1], bounds[2], bounds[3]])
        empirical = [wins[1] / rounds, wins[2] / rounds, wins[3] / rounds]
        # MAC settle time shifts the race slightly; 10 points of slack.
        for t, e in zip(theory, empirical):
            assert abs(t - e) < 0.10, (theory, empirical)
