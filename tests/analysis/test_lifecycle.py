"""Tests for packet lifecycle reconstruction."""

import pytest

from repro.analysis.lifecycle import reconstruct_journeys
from repro.sim.trace import Tracer
from tests.conftest import line_network


@pytest.fixture
def traced_run():
    tracer = Tracer()
    net = line_network("routeless", n=5, tracer=tracer)
    net.protocols[0].send_data(4)
    net.run(until=5.0)
    return tracer, net


class TestReconstruction:
    def test_data_journey_reconstructed(self, traced_run):
        tracer, net = traced_run
        journeys = reconstruct_journeys(tracer)
        data = journeys[("data", 0, 0)]
        assert data.delivered
        assert data.relays == [1, 2, 3]
        assert data.retransmissions == 0
        assert data.delivery_time is not None

    def test_discovery_and_reply_present(self, traced_run):
        tracer, net = traced_run
        journeys = reconstruct_journeys(tracer)
        assert ("path_discovery", 0, 0) in journeys
        reply = journeys[("path_reply", 4, 0)]
        assert reply.delivered
        assert reply.relays == [3, 2, 1]

    def test_events_time_ordered(self, traced_run):
        tracer, net = traced_run
        for journey in reconstruct_journeys(tracer).values():
            times = [e.time for e in journey.events]
            assert times == sorted(times)

    def test_candidates_recorded(self, traced_run):
        tracer, net = traced_run
        data = reconstruct_journeys(tracer)[("data", 0, 0)]
        candidates = [e.node for e in data.events if e.action == "candidate"]
        assert 1 in candidates  # node 1 competed for hop one

    def test_retransmissions_counted(self):
        from repro.net.routeless import RoutelessConfig
        tracer = Tracer()
        config = RoutelessConfig(arbiter_timeout_s=0.1, max_relay_retries=2)
        net = line_network("routeless", n=3, tracer=tracer,
                           protocol_config=config)
        net.protocols[0].send_data(2)
        net.run(until=3.0)
        net.radios[1].set_power(False)   # relay dies; source will retry
        net.protocols[0].send_data(2)
        net.run(until=8.0)
        journeys = reconstruct_journeys(tracer)
        stuck = journeys[("data", 0, 1)]
        assert not stuck.delivered
        assert stuck.retransmissions >= 1

    def test_accepts_plain_record_lists(self, traced_run):
        tracer, net = traced_run
        journeys = reconstruct_journeys(list(tracer.records))
        assert ("data", 0, 0) in journeys
