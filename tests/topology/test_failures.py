"""Tests for the duty-cycle failure model (Figure 4's workload)."""

import numpy as np
import pytest

from repro.topology.failures import DutyCycleFailure, apply_failures
from tests.conftest import line_positions, make_phy_stack


class TestDutyCycleFailure:
    def test_zero_fraction_never_fails(self, ctx):
        channel, radios, _ = make_phy_stack(ctx, line_positions(1))
        failure = DutyCycleFailure(ctx, radios[0], off_fraction=0.0)
        ctx.simulator.run(until=100.0)
        assert failure.outages == 0
        assert radios[0].is_on

    def test_long_run_off_fraction_approximates_target(self, ctx):
        channel, radios, _ = make_phy_stack(ctx, line_positions(1))
        failure = DutyCycleFailure(ctx, radios[0], off_fraction=0.10,
                                   mean_cycle_s=2.0)
        ctx.simulator.run(until=4000.0)
        assert failure.time_off / 4000.0 == pytest.approx(0.10, rel=0.25)
        assert failure.outages > 100

    def test_radio_actually_toggles(self, ctx):
        channel, radios, _ = make_phy_stack(ctx, line_positions(1))
        DutyCycleFailure(ctx, radios[0], off_fraction=0.5, mean_cycle_s=1.0)
        states = set()
        for _ in range(2000):
            if not ctx.simulator.step():
                break
            states.add(radios[0].is_on)
            if states == {True, False}:
                break
        assert states == {True, False}

    def test_invalid_fraction(self, ctx):
        channel, radios, _ = make_phy_stack(ctx, line_positions(1))
        with pytest.raises(ValueError):
            DutyCycleFailure(ctx, radios[0], off_fraction=1.0)
        with pytest.raises(ValueError):
            DutyCycleFailure(ctx, radios[0], off_fraction=-0.1)

    def test_invalid_cycle(self, ctx):
        channel, radios, _ = make_phy_stack(ctx, line_positions(1))
        with pytest.raises(ValueError):
            DutyCycleFailure(ctx, radios[0], off_fraction=0.1, mean_cycle_s=0.0)


class TestApplyFailures:
    def test_exempt_nodes_get_no_process(self, ctx):
        channel, radios, _ = make_phy_stack(ctx, line_positions(5))
        processes = apply_failures(ctx, radios, 0.1, exempt={0, 4})
        covered = {p.radio.node_id for p in processes}
        assert covered == {1, 2, 3}

    def test_exempt_endpoints_never_turn_off(self, ctx):
        channel, radios, _ = make_phy_stack(ctx, line_positions(3))
        apply_failures(ctx, radios, 0.5, exempt={0, 2}, mean_cycle_s=0.5)
        ctx.simulator.run(until=50.0)
        assert radios[0].is_on and radios[2].is_on
