"""Arena value object: geometry, sampling bit-identity, and the placement
deprecation shims (tentpole of the dimension-agnostic geometry PR)."""

import numpy as np
import pytest

from repro.topology.arena import Arena, as_arena
from repro.topology.placement import connected_uniform, grid, uniform_random


class TestArenaBasics:
    def test_2d_dim_and_extents(self):
        arena = Arena(1000.0, 800.0)
        assert arena.dim == 2
        assert arena.extents == (1000.0, 800.0)
        assert arena.volume == 1000.0 * 800.0

    def test_3d_dim_and_extents(self):
        arena = Arena(900.0, 900.0, depth_m=200.0)
        assert arena.dim == 3
        assert arena.extents == (900.0, 900.0, 200.0)
        assert arena.volume == 900.0 * 900.0 * 200.0

    def test_flat_drops_altitude(self):
        assert Arena(900.0, 700.0, depth_m=200.0).flat() == Arena(900.0, 700.0)

    def test_depth_zero_is_3d(self):
        assert Arena(500.0, 500.0, depth_m=0.0).dim == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            Arena(0.0, 100.0)
        with pytest.raises(ValueError):
            Arena(100.0, -1.0)
        with pytest.raises(ValueError):
            Arena(100.0, 100.0, depth_m=-5.0)

    def test_frozen(self):
        with pytest.raises(Exception):
            Arena(100.0, 100.0).width_m = 50.0


class TestSample:
    def test_2d_sample_matches_legacy_draw_order(self):
        """Bit-identity contract: one uniform vector per axis, in axis
        order — exactly the legacy xs-then-ys sequence."""
        sampled = Arena(775.0, 775.0).sample(np.random.default_rng(9), 60)
        rng = np.random.default_rng(9)
        xs = rng.uniform(0.0, 775.0, size=60)
        ys = rng.uniform(0.0, 775.0, size=60)
        assert np.array_equal(sampled, np.column_stack([xs, ys]))

    def test_3d_sample_shape_and_bounds(self):
        arena = Arena(900.0, 900.0, depth_m=200.0)
        positions = arena.sample(np.random.default_rng(0), 500)
        assert positions.shape == (500, 3)
        assert arena.contains(positions).all()

    def test_depth_zero_sample_pins_altitude(self):
        positions = Arena(500.0, 500.0, depth_m=0.0).sample(
            np.random.default_rng(1), 40)
        assert positions.shape == (40, 3)
        assert (positions[:, 2] == 0.0).all()

    def test_depth_zero_xy_matches_2d_exactly(self):
        """A degenerate 3-D arena draws the same x/y columns as the 2-D
        arena on the same seed (z is one extra draw after them)."""
        flat = Arena(600.0, 600.0).sample(np.random.default_rng(4), 30)
        deg = Arena(600.0, 600.0, depth_m=0.0).sample(
            np.random.default_rng(4), 30)
        assert np.array_equal(deg[:, :2], flat)


class TestContainsClamp:
    def test_contains(self):
        arena = Arena(100.0, 100.0, depth_m=50.0)
        positions = np.array([[50.0, 50.0, 25.0],
                              [150.0, 50.0, 25.0],
                              [50.0, 50.0, 60.0],
                              [0.0, 100.0, 0.0]])
        assert arena.contains(positions).tolist() == [True, False, False, True]

    def test_clamp(self):
        arena = Arena(100.0, 100.0)
        clamped = arena.clamp(np.array([[-5.0, 50.0], [50.0, 120.0]]))
        assert np.array_equal(clamped, [[0.0, 50.0], [50.0, 100.0]])

    def test_dim_mismatch_rejected(self):
        with pytest.raises(ValueError, match=r"\(N, 2\)"):
            Arena(100.0, 100.0).contains(np.zeros((3, 3)))


class TestAsArena:
    def test_passthrough_and_tuples(self):
        arena = Arena(10.0, 20.0)
        assert as_arena(arena) is arena
        assert as_arena((10.0, 20.0)) == arena
        assert as_arena((10.0, 20.0, 5.0)) == Arena(10.0, 20.0, 5.0)

    def test_keywords(self):
        assert as_arena(None, width_m=10, height_m=20) == Arena(10.0, 20.0)
        with pytest.raises(TypeError):
            as_arena(None, width_m=10)


class TestPlacementShims:
    def test_uniform_random_arena_matches_legacy_bitwise(self):
        arena = Arena(500.0, 500.0)
        new = uniform_random(50, arena, rng=np.random.default_rng(3))
        with pytest.warns(DeprecationWarning):
            old = uniform_random(50, 500.0, 500.0, np.random.default_rng(3))
        assert np.array_equal(new, old)

    def test_uniform_random_positional_rng_after_arena(self):
        arena = Arena(500.0, 500.0)
        a = uniform_random(20, arena, np.random.default_rng(8))
        b = uniform_random(20, arena, rng=np.random.default_rng(8))
        assert np.array_equal(a, b)

    def test_connected_uniform_arena_matches_legacy_bitwise(self):
        arena = Arena(600.0, 600.0)
        new = connected_uniform(40, arena, 250.0, np.random.default_rng(2))
        with pytest.warns(DeprecationWarning):
            old = connected_uniform(40, 600.0, 600.0, 250.0,
                                    np.random.default_rng(2))
        assert np.array_equal(new, old)

    def test_connected_uniform_3d(self):
        arena = Arena(600.0, 600.0, depth_m=150.0)
        positions = connected_uniform(40, arena, range_m=250.0,
                                      rng=np.random.default_rng(2))
        assert positions.shape == (40, 3)
        assert arena.contains(positions).all()

    def test_grid_3d_origin_stacks_levels(self):
        points = grid(2, 2, 10.0, origin=(0.0, 0.0, 100.0), levels=3)
        assert points.shape == (12, 3)
        assert set(points[:, 2]) == {100.0, 110.0, 120.0}

    def test_grid_levels_require_3d_origin(self):
        with pytest.raises(ValueError, match="3-D origin"):
            grid(2, 2, 10.0, levels=2)
