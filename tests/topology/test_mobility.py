"""Tests for the mobility models."""

import numpy as np
import pytest

from repro.topology.mobility import MobilityConfig, RandomWalk, RandomWaypoint
from tests.conftest import line_positions, make_phy_stack


def build(ctx, model_cls, n=10, config=None, frozen=(), width=500.0, height=500.0):
    rng = np.random.default_rng(3)
    positions = rng.uniform(0, 500, size=(n, 2))
    channel, radios, _ = make_phy_stack(ctx, positions)
    model = model_cls(ctx, channel, width, height,
                      config=config if config is not None else MobilityConfig(),
                      frozen=frozen)
    return channel, model


class TestConfig:
    def test_invalid_speeds(self):
        with pytest.raises(ValueError):
            MobilityConfig(min_speed_mps=0.0)
        with pytest.raises(ValueError):
            MobilityConfig(min_speed_mps=5.0, max_speed_mps=1.0)

    def test_invalid_tick(self):
        with pytest.raises(ValueError):
            MobilityConfig(tick_s=0.0)

    def test_invalid_pause(self):
        with pytest.raises(ValueError):
            MobilityConfig(min_pause_s=2.0, max_pause_s=1.0)


@pytest.mark.parametrize("model_cls", [RandomWaypoint, RandomWalk])
class TestCommonBehaviour:
    def test_nodes_actually_move(self, ctx, model_cls):
        channel, model = build(ctx, model_cls)
        start = channel.positions.copy()
        ctx.simulator.run(until=10.0)
        assert not np.allclose(channel.positions, start)
        assert model.ticks > 0

    def test_positions_stay_in_bounds(self, ctx, model_cls):
        channel, model = build(ctx, model_cls)
        for _ in range(50):
            ctx.simulator.run(until=ctx.simulator.now + 1.0)
            assert (model.positions[:, 0] >= -1e-9).all()
            assert (model.positions[:, 0] <= 500.0 + 1e-9).all()
            assert (model.positions[:, 1] >= -1e-9).all()
            assert (model.positions[:, 1] <= 500.0 + 1e-9).all()

    def test_speed_bounded(self, ctx, model_cls):
        config = MobilityConfig(min_speed_mps=2.0, max_speed_mps=8.0,
                                tick_s=0.5)
        channel, model = build(ctx, model_cls, config=config)
        ctx.simulator.run(until=20.0)
        # Total distance cannot exceed max speed × elapsed time.
        assert (model.distance_moved_m <= 8.0 * 20.0 + 1e-6).all()

    def test_frozen_nodes_stay_put(self, ctx, model_cls):
        channel, model = build(ctx, model_cls, frozen={0, 3})
        start = channel.positions.copy()
        ctx.simulator.run(until=10.0)
        assert np.allclose(model.positions[0], start[0])
        assert np.allclose(model.positions[3], start[3])
        assert not np.allclose(model.positions[1], start[1])

    def test_channel_link_budget_tracks_movement(self, ctx, model_cls):
        channel, model = build(ctx, model_cls)
        before = channel.rx_power_dbm.copy()
        ctx.simulator.run(until=10.0)
        assert not np.allclose(channel.rx_power_dbm, before)

    def test_deterministic(self, model_cls):
        from repro.sim.components import SimContext
        from repro.sim.engine import Simulator
        from repro.sim.rng import RandomStreams

        finals = []
        for _ in range(2):
            ctx = SimContext(Simulator(), RandomStreams(5))
            channel, model = build(ctx, model_cls)
            ctx.simulator.run(until=5.0)
            finals.append(model.positions.copy())
        assert np.array_equal(finals[0], finals[1])


class TestRandomWaypointSpecifics:
    def test_pausing_happens(self, ctx):
        config = MobilityConfig(min_speed_mps=40.0, max_speed_mps=50.0,
                                min_pause_s=5.0, max_pause_s=10.0, tick_s=0.25)
        channel, model = build(ctx, RandomWaypoint, config=config)
        ctx.simulator.run(until=30.0)
        # With fast travel and long pauses, somebody must be paused now.
        assert (model.pause_until > ctx.simulator.now).any()


class TestChannelReconfiguration:
    def test_set_positions_rejects_wrong_shape(self, ctx):
        channel, _, _ = make_phy_stack(ctx, line_positions(3))
        with pytest.raises(ValueError):
            channel.set_positions(np.zeros((2, 2)))

    def test_reach_changes_when_node_walks_away(self, ctx):
        channel, radios, _ = make_phy_stack(ctx, line_positions(2, spacing=100.0))
        assert 1 in channel.reach[0]
        moved = np.array([[0.0, 0.0], [5000.0, 0.0]])
        channel.set_positions(moved)
        assert 1 not in channel.reach[0]


class TestSparseChannelWiring:
    """Mobility ticks drive the sparse channel via incremental move_nodes."""

    def _drive(self, link_budget):
        from repro.phy.channel import Channel
        from repro.phy.propagation import FreeSpace, range_to_threshold_dbm
        from repro.sim.components import SimContext
        from repro.sim.engine import Simulator
        from repro.sim.rng import RandomStreams

        ctx = SimContext(Simulator(), RandomStreams(5))
        positions = np.random.default_rng(3).uniform(0, 500, size=(12, 2))
        model = FreeSpace()
        threshold = range_to_threshold_dbm(model, 15.0, 250.0)
        channel = Channel(ctx, positions, model, 15.0, threshold,
                          link_budget=link_budget)
        RandomWaypoint(ctx, channel, 500.0, 500.0, config=MobilityConfig(),
                       frozen={0, 3})
        return ctx, channel

    def test_sparse_ticks_match_dense_rebuilds(self):
        finals = {}
        for mode in ("dense", "sparse"):
            ctx, channel = self._drive(mode)
            ctx.simulator.run(until=10.0)
            finals[mode] = channel
        dense, sparse = finals["dense"], finals["sparse"]
        assert np.array_equal(dense.positions, sparse.positions)
        for node in range(12):
            assert np.array_equal(dense.reach[node], sparse.reach[node])
            assert dense._reach_powers[node] == sparse._reach_powers[node]

    def test_tick_only_passes_moved_ids(self):
        ctx, channel = self._drive("sparse")
        calls = []
        original = channel.move_nodes
        channel.move_nodes = lambda ids, pos: (
            calls.append(np.asarray(ids).copy()), original(ids, pos))[1]
        ctx.simulator.run(until=2.0)
        assert calls  # the model ticked and nodes moved
        for ids in calls:
            assert 0 not in ids and 3 not in ids  # frozen nodes never passed
