"""3-D mobility: GaussMarkov3D determinism and invariants, virtual-force
topology control, the model registry, and the Arena deprecation shims."""

import numpy as np
import pytest

from repro.phy.channel import Channel
from repro.phy.propagation import FreeSpace, range_to_threshold_dbm
from repro.sim.components import SimContext
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.topology.arena import Arena
from repro.topology.mobility import (
    GaussMarkov3D,
    GaussMarkovConfig,
    MobilityConfig,
    RandomWalk,
    RandomWaypoint,
    mobility_model,
    mobility_model_names,
    register_mobility_model,
)
from repro.topology.vforce import VirtualForceConfig, VirtualForceControl

ARENA_3D = Arena(600.0, 600.0, depth_m=150.0)


def make_stack(arena, seed=7, n=30):
    ctx = SimContext(Simulator(), RandomStreams(seed))
    positions = arena.sample(np.random.default_rng(seed), n)
    model = FreeSpace()
    threshold = range_to_threshold_dbm(model, 15.0, 250.0)
    channel = Channel(ctx, positions, model, 15.0, threshold)
    return ctx, channel


class TestGaussMarkov3D:
    def test_requires_3d_arena(self):
        ctx, channel = make_stack(Arena(500.0, 500.0))
        with pytest.raises(ValueError, match="3-D arena"):
            GaussMarkov3D(ctx, channel, arena=Arena(500.0, 500.0))

    def test_seeded_replay_is_deterministic(self):
        trajectories = []
        for _ in range(2):
            ctx, channel = make_stack(ARENA_3D)
            model = GaussMarkov3D(ctx, channel, arena=ARENA_3D)
            ctx.simulator.run(until=5.0)
            trajectories.append((model.positions.copy(),
                                 channel.positions.copy()))
        assert np.array_equal(trajectories[0][0], trajectories[1][0])
        assert np.array_equal(trajectories[0][1], trajectories[1][1])

    def test_nodes_actually_move_and_stay_inside(self):
        ctx, channel = make_stack(ARENA_3D)
        start = channel.positions.copy()
        GaussMarkov3D(ctx, channel, arena=ARENA_3D)
        ctx.simulator.run(until=10.0)
        assert not np.array_equal(channel.positions, start)
        assert ARENA_3D.contains(channel.positions).all()

    def test_altitude_clamp_invariant(self):
        """Every tick leaves every altitude inside the configured band."""
        ctx, channel = make_stack(ARENA_3D, seed=3)
        cfg = GaussMarkovConfig(min_altitude_m=40.0, max_altitude_m=110.0,
                                mean_speed_mps=25.0, pitch_sigma_rad=0.5)
        model = GaussMarkov3D(ctx, channel, arena=ARENA_3D, config=cfg)

        violations = []
        original = model._tick

        def checked_tick():
            original()
            z = model.positions[model.mobile, 2]
            if ((z < 40.0) | (z > 110.0)).any():
                violations.append(z.copy())

        model._tick = checked_tick
        ctx.simulator.run(until=20.0)
        assert model.ticks > 50
        assert not violations

    def test_bad_altitude_band_rejected(self):
        ctx, channel = make_stack(ARENA_3D)
        cfg = GaussMarkovConfig(min_altitude_m=100.0, max_altitude_m=50.0)
        with pytest.raises(ValueError, match="altitude band"):
            GaussMarkov3D(ctx, channel, arena=ARENA_3D, config=cfg)

    def test_per_node_alpha(self):
        ctx, channel = make_stack(ARENA_3D, n=4)
        alphas = np.array([0.0, 0.3, 0.6, 0.9])
        model = GaussMarkov3D(ctx, channel, arena=ARENA_3D, alpha=alphas)
        assert np.array_equal(model.alpha, alphas)
        ctx.simulator.run(until=2.0)
        assert ARENA_3D.contains(model.positions).all()

    def test_per_node_alpha_validated(self):
        ctx, channel = make_stack(ARENA_3D, n=3)
        with pytest.raises(ValueError, match="alpha"):
            GaussMarkov3D(ctx, channel, arena=ARENA_3D,
                          alpha=np.array([0.5, 1.5, 0.2]))

    def test_frozen_nodes_stay_put(self):
        ctx, channel = make_stack(ARENA_3D)
        start = channel.positions.copy()
        GaussMarkov3D(ctx, channel, arena=ARENA_3D, frozen={0, 5})
        ctx.simulator.run(until=5.0)
        assert np.array_equal(channel.positions[0], start[0])
        assert np.array_equal(channel.positions[5], start[5])

    def test_alpha_one_is_ballistic_between_walls(self):
        """α = 1 keeps the initial velocity exactly (no noise injected)."""
        ctx, channel = make_stack(ARENA_3D, n=5)
        model = GaussMarkov3D(ctx, channel, arena=ARENA_3D, alpha=1.0)
        s0, h0 = model.speed.copy(), model.heading.copy()
        ctx.simulator.run(until=1.0)
        assert np.array_equal(model.speed, s0)
        # Headings only change where a wall reflected them.
        unchanged = model.heading == h0
        assert unchanged.any()

    def test_depth_zero_arena_flies_level(self):
        arena = Arena(600.0, 600.0, depth_m=0.0)
        ctx, channel = make_stack(arena)
        GaussMarkov3D(ctx, channel, arena=arena)
        ctx.simulator.run(until=3.0)
        assert (channel.positions[:, 2] == 0.0).all()


class TestDimensionAgnosticClassics:
    @pytest.mark.parametrize("model_cls", [RandomWaypoint, RandomWalk])
    def test_2d_models_run_in_3d(self, model_cls):
        ctx, channel = make_stack(ARENA_3D)
        start = channel.positions.copy()
        model_cls(ctx, channel, arena=ARENA_3D,
                  config=MobilityConfig(min_speed_mps=5.0, max_speed_mps=10.0))
        ctx.simulator.run(until=5.0)
        assert not np.array_equal(channel.positions, start)
        assert ARENA_3D.contains(channel.positions).all()

    def test_arena_channel_dim_mismatch_rejected(self):
        ctx, channel = make_stack(Arena(500.0, 500.0))
        with pytest.raises(ValueError, match="2-D"):
            RandomWaypoint(ctx, channel, arena=ARENA_3D)


class TestVirtualForce:
    def test_clumped_nodes_spread_apart(self):
        arena = Arena(600.0, 600.0)
        ctx = SimContext(Simulator(), RandomStreams(1))
        # A tight clump well under the target spacing.
        rng = np.random.default_rng(1)
        positions = 300.0 + rng.uniform(-10.0, 10.0, size=(12, 2))
        model = FreeSpace()
        threshold = range_to_threshold_dbm(model, 15.0, 250.0)
        channel = Channel(ctx, positions, model, 15.0, threshold)
        control = VirtualForceControl(
            ctx, channel, arena=arena,
            config=VirtualForceConfig(comm_range_m=250.0, max_step_m=10.0))

        def spread(pos):
            return np.linalg.norm(pos - pos.mean(axis=0), axis=1).mean()

        before = spread(channel.positions)
        ctx.simulator.run(until=20.0)
        assert control.ticks > 10
        assert spread(channel.positions) > 2 * before
        assert arena.contains(channel.positions).all()

    def test_frozen_nodes_anchor(self):
        arena = Arena(600.0, 600.0)
        ctx = SimContext(Simulator(), RandomStreams(2))
        positions = np.array([[300.0, 300.0], [301.0, 300.0], [300.0, 301.0]])
        model = FreeSpace()
        threshold = range_to_threshold_dbm(model, 15.0, 250.0)
        channel = Channel(ctx, positions, model, 15.0, threshold)
        VirtualForceControl(ctx, channel, arena=arena, frozen={0})
        ctx.simulator.run(until=5.0)
        assert np.array_equal(channel.positions[0], [300.0, 300.0])

    def test_target_degree_tracks(self):
        arena = Arena(900.0, 900.0, depth_m=100.0)
        ctx = SimContext(Simulator(), RandomStreams(3))
        positions = arena.sample(np.random.default_rng(3), 30)
        model = FreeSpace()
        threshold = range_to_threshold_dbm(model, 15.0, 250.0)
        channel = Channel(ctx, positions, model, 15.0, threshold)
        control = VirtualForceControl(
            ctx, channel, arena=arena,
            config=VirtualForceConfig(comm_range_m=250.0, target_degree=6))
        ctx.simulator.run(until=30.0)
        assert control.mean_degree > 0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            VirtualForceConfig(comm_range_m=-1.0)
        with pytest.raises(ValueError):
            VirtualForceConfig(max_step_m=0.0)


class TestRegistry:
    def test_builtins_registered(self):
        names = mobility_model_names()
        assert {"rwp", "rwalk", "gauss_markov_3d"} <= set(names)
        assert mobility_model("rwp") is RandomWaypoint
        assert mobility_model("rwalk") is RandomWalk
        assert mobility_model("gauss_markov_3d") is GaussMarkov3D

    def test_unknown_name_lists_choices(self):
        with pytest.raises(KeyError, match="rwp"):
            mobility_model("teleport")

    def test_reregistration_conflict(self):
        with pytest.raises(ValueError, match="already registered"):
            register_mobility_model("rwp", RandomWalk)
        # Re-registering the same class is idempotent, not an error.
        register_mobility_model("rwp", RandomWaypoint)


class TestDeprecationShims:
    def test_legacy_positional_width_height_warns(self):
        ctx, channel = make_stack(Arena(500.0, 500.0))
        with pytest.warns(DeprecationWarning, match="arena=Arena"):
            model = RandomWaypoint(ctx, channel, 500.0, 500.0,
                                   config=MobilityConfig())
        assert model.arena == Arena(500.0, 500.0)

    def test_legacy_positional_config_and_frozen(self):
        ctx, channel = make_stack(Arena(500.0, 500.0))
        with pytest.warns(DeprecationWarning):
            model = RandomWaypoint(ctx, channel, 500.0, 500.0,
                                   MobilityConfig(max_speed_mps=4.0), {1, 2})
        assert model.config.max_speed_mps == 4.0
        assert not model.mobile[1] and not model.mobile[2]

    def test_legacy_keywords_warn(self):
        ctx, channel = make_stack(Arena(500.0, 500.0))
        with pytest.warns(DeprecationWarning, match="width_m"):
            model = RandomWalk(ctx, channel, width_m=500.0, height_m=500.0)
        assert model.arena == Arena(500.0, 500.0)

    def test_legacy_attrs_still_exposed(self):
        ctx, channel = make_stack(ARENA_3D)
        model = RandomWaypoint(ctx, channel, arena=ARENA_3D)
        assert (model.width_m, model.height_m, model.depth_m) == \
            (600.0, 600.0, 150.0)

    def test_arena_via_config(self):
        ctx, channel = make_stack(Arena(500.0, 500.0))
        model = RandomWalk(ctx, channel,
                           config=MobilityConfig(arena=Arena(500.0, 500.0)))
        assert model.arena == Arena(500.0, 500.0)

    def test_arena_twice_rejected(self):
        ctx, channel = make_stack(Arena(500.0, 500.0))
        with pytest.raises(TypeError, match="twice"):
            RandomWaypoint(ctx, channel, Arena(500.0, 500.0),
                           arena=Arena(500.0, 500.0))

    def test_missing_arena_rejected(self):
        ctx, channel = make_stack(Arena(500.0, 500.0))
        with pytest.raises(TypeError, match="arena"):
            RandomWaypoint(ctx, channel)

    def test_legacy_replay_bit_identical_to_arena_spelling(self):
        """The shim is pure argument plumbing: same seed, same trajectory."""
        outcomes = []
        for legacy in (True, False):
            ctx, channel = make_stack(Arena(500.0, 500.0), seed=13)
            if legacy:
                with pytest.warns(DeprecationWarning):
                    RandomWaypoint(ctx, channel, 500.0, 500.0,
                                   config=MobilityConfig())
            else:
                RandomWaypoint(ctx, channel, arena=Arena(500.0, 500.0),
                               config=MobilityConfig())
            ctx.simulator.run(until=5.0)
            outcomes.append(channel.positions.copy())
        assert np.array_equal(outcomes[0], outcomes[1])
