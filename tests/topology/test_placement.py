"""Tests for placement generators and connectivity checks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology.placement import (
    adjacency,
    connected_uniform,
    grid,
    is_connected,
    pairwise_distances,
    uniform_random,
)


class TestUniform:
    def test_within_bounds(self):
        rng = np.random.default_rng(0)
        positions = uniform_random(200, 1000.0, 500.0, rng)
        assert positions.shape == (200, 2)
        assert (positions[:, 0] >= 0).all() and (positions[:, 0] <= 1000).all()
        assert (positions[:, 1] >= 0).all() and (positions[:, 1] <= 500).all()

    def test_deterministic_with_seed(self):
        a = uniform_random(10, 100, 100, np.random.default_rng(1))
        b = uniform_random(10, 100, 100, np.random.default_rng(1))
        assert np.array_equal(a, b)

    def test_rejects_nonpositive_n(self):
        with pytest.raises(ValueError):
            uniform_random(0, 100, 100, np.random.default_rng(0))


class TestGrid:
    def test_shape_and_spacing(self):
        positions = grid(2, 3, spacing_m=10.0)
        assert positions.shape == (6, 2)
        assert np.allclose(positions[1] - positions[0], [10.0, 0.0])

    def test_origin_offset(self):
        positions = grid(1, 1, 10.0, origin=(5.0, 7.0))
        assert np.allclose(positions[0], [5.0, 7.0])

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            grid(0, 3, 10.0)


class TestConnectivity:
    def test_line_is_connected_at_sufficient_range(self):
        positions = np.array([[0.0, 0.0], [100.0, 0.0], [200.0, 0.0]])
        assert is_connected(positions, 150.0)

    def test_split_line_is_disconnected(self):
        positions = np.array([[0.0, 0.0], [100.0, 0.0], [500.0, 0.0]])
        assert not is_connected(positions, 150.0)

    def test_single_node_connected(self):
        assert is_connected(np.array([[0.0, 0.0]]), 1.0)

    def test_adjacency_symmetric_no_self_loops(self):
        rng = np.random.default_rng(0)
        positions = uniform_random(30, 500, 500, rng)
        adj = adjacency(positions, 200.0)
        assert (adj == adj.T).all()
        assert not adj.diagonal().any()

    def test_connected_uniform_always_connected(self):
        rng = np.random.default_rng(2)
        for _ in range(5):
            positions = connected_uniform(40, 800, 800, 250.0, rng)
            assert is_connected(positions, 250.0)

    def test_connected_uniform_gives_up_when_impossible(self):
        rng = np.random.default_rng(0)
        with pytest.raises(RuntimeError):
            connected_uniform(50, 100_000, 100_000, 10.0, rng, max_tries=3)

    @given(st.integers(min_value=2, max_value=30), st.integers(min_value=0, max_value=100))
    @settings(max_examples=30, deadline=None)
    def test_connectivity_matches_networkx(self, n, seed):
        import networkx as nx

        rng = np.random.default_rng(seed)
        positions = uniform_random(n, 500, 500, rng)
        range_m = 200.0
        graph = nx.Graph()
        graph.add_nodes_from(range(n))
        dist = pairwise_distances(positions)
        for i in range(n):
            for j in range(i + 1, n):
                if dist[i, j] <= range_m:
                    graph.add_edge(i, j)
        assert is_connected(positions, range_m) == nx.is_connected(graph)


class TestDistances:
    def test_pairwise_matches_manual(self):
        positions = np.array([[0.0, 0.0], [3.0, 4.0]])
        dist = pairwise_distances(positions)
        assert dist[0, 1] == pytest.approx(5.0)
        assert dist[0, 0] == 0.0


class TestSparseConnectivity:
    """The grid-BFS path used above _SPARSE_CONNECTIVITY_MIN_NODES must
    agree with the dense matrix BFS it replaces."""

    def test_matches_dense_on_random_deployments(self):
        from repro.topology.placement import _is_connected_sparse

        for seed in range(12):
            rng = np.random.default_rng(seed)
            positions = uniform_random(120, 900, 900, rng)
            range_m = 160.0
            assert (_is_connected_sparse(positions, range_m)
                    == is_connected(positions, range_m)), seed

    def test_line_and_split_line(self):
        from repro.topology.placement import _is_connected_sparse

        line = np.array([[0.0, 0.0], [100.0, 0.0], [200.0, 0.0]])
        assert _is_connected_sparse(line, 150.0)
        split = np.array([[0.0, 0.0], [100.0, 0.0], [500.0, 0.0]])
        assert not _is_connected_sparse(split, 150.0)
        assert _is_connected_sparse(np.array([[0.0, 0.0]]), 1.0)
