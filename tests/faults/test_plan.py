"""FaultPlan / FaultSpec: validation, wire format, builders."""

import pytest

from repro.faults.plan import (
    ClockSkew,
    DutyCycleOutage,
    EnergyDepletion,
    FaultPlan,
    FaultSpec,
    LinkDegradation,
    NodeCrash,
    PacketCorruption,
    Partition,
    fig4_plan,
    mixed_chaos_plan,
)

ONE_OF_EACH = FaultPlan(name="everything", faults=(
    NodeCrash(nodes=(3,), start_s=1.0, recover_s=4.0),
    DutyCycleOutage(off_fraction=0.1, mean_cycle_s=2.0),
    LinkDegradation(pairs=((1, 2), (4, 5)), loss_db=20.0,
                    start_s=2.0, stop_s=8.0, symmetric=False),
    Partition(groups=((0, 1), (2, 3)), start_s=3.0, stop_s=6.0),
    PacketCorruption(probability=0.05, start_s=1.0, stop_s=9.0),
    ClockSkew(sigma=0.02, min_factor=0.6),
    EnergyDepletion(nodes=(7,), capacity_j=0.5, poll_s=0.5),
))


class TestRoundTrip:
    def test_plan_json_round_trip_is_equal(self):
        assert FaultPlan.from_json(ONE_OF_EACH.to_json()) == ONE_OF_EACH

    def test_each_spec_dict_round_trip(self):
        for spec in ONE_OF_EACH.faults:
            assert FaultSpec.from_dict(spec.to_dict()) == spec

    def test_save_load(self, tmp_path):
        path = tmp_path / "plan.json"
        ONE_OF_EACH.save(path)
        assert FaultPlan.load(path) == ONE_OF_EACH

    def test_nested_tuples_survive_json(self):
        plan = FaultPlan.from_json(ONE_OF_EACH.to_json())
        link = next(f for f in plan.faults if isinstance(f, LinkDegradation))
        assert link.pairs == ((1, 2), (4, 5))
        part = next(f for f in plan.faults if isinstance(f, Partition))
        assert part.groups == ((0, 1), (2, 3))

    def test_merged_concatenates(self):
        merged = fig4_plan(0.1).merged(ONE_OF_EACH)
        assert merged.name == "fig4-0.1+everything"
        assert len(merged.faults) == 1 + len(ONE_OF_EACH.faults)


class TestValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec.from_dict({"kind": "cosmic_rays"})

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown field"):
            FaultSpec.from_dict({"kind": "node_crash", "nodes": [1],
                                 "severity": 11})

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError, match="start_s"):
            PacketCorruption(probability=0.1, start_s=-1.0)

    def test_crash_needs_nodes(self):
        with pytest.raises(ValueError, match="explicit node set"):
            NodeCrash()

    def test_crash_recover_after_start(self):
        with pytest.raises(ValueError, match="recover_s"):
            NodeCrash(nodes=(1,), start_s=5.0, recover_s=5.0)

    def test_duplicate_nodes_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            NodeCrash(nodes=(1, 1))

    def test_off_fraction_bounds(self):
        with pytest.raises(ValueError, match="off_fraction"):
            DutyCycleOutage(off_fraction=1.0)

    def test_link_self_loop_rejected(self):
        with pytest.raises(ValueError, match="self-loop"):
            LinkDegradation(pairs=((2, 2),))

    def test_link_needs_pairs(self):
        with pytest.raises(ValueError, match="at least one"):
            LinkDegradation(pairs=())

    def test_link_loss_positive(self):
        with pytest.raises(ValueError, match="loss_db"):
            LinkDegradation(pairs=((0, 1),), loss_db=0.0)

    def test_partition_needs_two_groups(self):
        with pytest.raises(ValueError, match="two groups"):
            Partition(groups=((0, 1),))

    def test_partition_groups_disjoint(self):
        with pytest.raises(ValueError, match="more than one"):
            Partition(groups=((0, 1), (1, 2)))

    def test_corruption_probability_bounds(self):
        with pytest.raises(ValueError, match="probability"):
            PacketCorruption(probability=0.0)
        with pytest.raises(ValueError, match="probability"):
            PacketCorruption(probability=1.5)

    def test_stop_after_start(self):
        with pytest.raises(ValueError, match="stop_s"):
            PacketCorruption(probability=0.1, start_s=3.0, stop_s=3.0)

    def test_positional_construction_rejected(self):
        with pytest.raises(TypeError):
            PacketCorruption(0.5)
        with pytest.raises(TypeError):
            FaultPlan("name")

    def test_plan_rejects_non_specs(self):
        with pytest.raises(TypeError, match="not a FaultSpec"):
            FaultPlan(faults=({"kind": "node_crash"},))


class TestBuilders:
    def test_fig4_plan_shape(self):
        plan = fig4_plan(0.05, mean_cycle_s=3.0)
        assert plan.name == "fig4-0.05"
        (outage,) = plan.faults
        assert isinstance(outage, DutyCycleOutage)
        assert outage.off_fraction == 0.05
        assert outage.mean_cycle_s == 3.0
        assert outage.exempt_endpoints

    def test_mixed_chaos_avoids_exempt_victims(self):
        plan = mixed_chaos_plan(10, exempt=(5,))
        crash = next(f for f in plan.faults if isinstance(f, NodeCrash))
        assert 5 not in crash.nodes

    def test_mixed_chaos_all_exempt_raises(self):
        with pytest.raises(ValueError, match="no non-exempt"):
            mixed_chaos_plan(2, exempt=(0, 1))
