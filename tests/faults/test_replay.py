"""The replay guarantee: serialize → deserialize → execute twice, same seed
→ identical obs-ledger event sequences and identical metrics."""

import numpy as np

from repro.experiments.common import (
    ScenarioConfig,
    attach_cbr,
    build_protocol_network,
)
from repro.faults import FaultPlan, install_plan, mixed_chaos_plan
from repro.obs.observe import Observability


def run_plan(plan: FaultPlan, seed: int = 2):
    """One small chaotic run; returns (summary, full fault-event sequence)."""
    rng = np.random.default_rng(99)
    positions = rng.uniform(0.0, 500.0, size=(16, 2))
    obs = Observability()
    net = build_protocol_network(
        "counter1",
        ScenarioConfig(n_nodes=16, positions=positions, range_m=250.0,
                       seed=seed),
        obs=obs)
    install_plan(net, plan, exempt={0, 15})
    attach_cbr(net, [(0, 15)], interval_s=0.5, stop_s=8.0)
    net.run(until=10.0)
    events = [(e.time, e.node, e.detail.get("kind"), e.detail.get("action"))
              for e in obs.ledger.entries if e.layer == "fault"]
    return net.summary(), events


def test_wire_round_trip_replays_bit_identically():
    plan = mixed_chaos_plan(16, exempt=(0, 15))
    reloaded = FaultPlan.from_json(plan.to_json())
    assert reloaded == plan

    summary_a, events_a = run_plan(reloaded)
    summary_b, events_b = run_plan(reloaded)
    assert events_a, "the chaos plan should actually fire faults"
    assert events_a == events_b
    assert summary_a == summary_b


def test_original_and_deserialized_plans_agree():
    plan = mixed_chaos_plan(16, exempt=(0, 15))
    assert run_plan(plan) == run_plan(FaultPlan.from_json(plan.to_json()))


def test_different_seeds_diverge():
    # Sanity check that the equality above is meaningful: another seed
    # produces a different fault schedule.
    plan = mixed_chaos_plan(16, exempt=(0, 15))
    _, events_a = run_plan(plan, seed=2)
    _, events_b = run_plan(plan, seed=3)
    assert events_a != events_b
