"""FaultController behaviors on small, hand-positioned networks."""

import numpy as np
import pytest

from repro.experiments.common import (
    ScenarioConfig,
    attach_cbr,
    build_protocol_network,
)
from repro.faults import (
    ClockSkew,
    DutyCycleOutage,
    EnergyDepletion,
    FaultPlan,
    LinkDegradation,
    NodeCrash,
    PacketCorruption,
    Partition,
    install_plan,
)
from repro.obs.ledger import DropReason
from repro.obs.observe import Observability
from repro.topology.failures import apply_failures

#: A 4-node chain with only adjacent links in range (range 250 m).
CHAIN = np.array([[0.0, 0.0], [150.0, 0.0], [300.0, 0.0], [450.0, 0.0]])


def chain_net(protocol="counter1", obs=None, seed=1, with_energy=False):
    scenario = ScenarioConfig(n_nodes=4, positions=CHAIN, range_m=250.0,
                              seed=seed, with_energy=with_energy)
    return build_protocol_network(protocol, scenario, obs=obs)


def fault_events(obs, kind=None):
    entries = [e for e in obs.ledger.entries if e.layer == "fault"]
    if kind is not None:
        entries = [e for e in entries if e.detail.get("kind") == kind]
    return entries


class TestNodeCrash:
    def test_crash_and_recover(self):
        obs = Observability()
        net = chain_net(obs=obs)
        install_plan(net, FaultPlan(faults=(
            NodeCrash(nodes=(1,), start_s=1.0, recover_s=2.0),)))
        net.run(until=3.0)
        assert net.radios[1].is_on
        actions = [e.detail["action"] for e in fault_events(obs, "node_crash")]
        assert actions == ["off", "on"]

    def test_crash_without_recovery_stays_down(self):
        net = chain_net()
        install_plan(net, FaultPlan(faults=(
            NodeCrash(nodes=(1,), start_s=1.0),)))
        net.run(until=3.0)
        assert not net.radios[1].is_on

    def test_crashed_relay_breaks_the_chain(self):
        net = chain_net()
        install_plan(net, FaultPlan(faults=(NodeCrash(nodes=(1,),),)))
        attach_cbr(net, [(0, 3)], interval_s=1.0, stop_s=4.0)
        net.run(until=6.0)
        assert net.summary().delivered == 0

    def test_exempt_nodes_are_protected(self):
        net = chain_net()
        install_plan(net, FaultPlan(faults=(NodeCrash(nodes=(1,),),)),
                     exempt={1})
        net.run(until=1.0)
        assert net.radios[1].is_on


class TestPacketCorruption:
    def test_certain_corruption_kills_all_receptions(self):
        obs = Observability()
        net = chain_net(obs=obs)
        install_plan(net, FaultPlan(faults=(
            PacketCorruption(probability=1.0),)))
        attach_cbr(net, [(0, 1)], interval_s=1.0, stop_s=4.0)
        net.run(until=6.0)
        summary = net.summary()
        assert summary.generated > 0
        assert summary.delivered == 0
        assert obs.ledger.drop_counts()[DropReason.FAULT_CORRUPTED] > 0

    def test_corruption_window_closes(self):
        net = chain_net()
        install_plan(net, FaultPlan(faults=(
            PacketCorruption(probability=1.0, start_s=0.0, stop_s=2.0),)))
        attach_cbr(net, [(0, 1)], interval_s=1.0, stop_s=8.0)
        net.run(until=10.0)
        assert net.summary().delivered > 0
        assert net.radios[0].fault_corrupt_prob == 0.0


class TestLinkFaults:
    def test_partition_blocks_cross_group_traffic(self):
        net = chain_net()
        install_plan(net, FaultPlan(faults=(
            Partition(groups=((0, 1), (2, 3)),),)))
        attach_cbr(net, [(0, 3)], interval_s=1.0, stop_s=4.0)
        net.run(until=6.0)
        assert net.summary().delivered == 0

    def test_partition_heals_at_stop(self):
        net = chain_net()
        install_plan(net, FaultPlan(faults=(
            Partition(groups=((0, 1), (2, 3)), start_s=0.0, stop_s=1.0),)))
        attach_cbr(net, [(0, 3)], interval_s=1.0, stop_s=6.0)
        net.run(until=9.0)
        assert net.summary().delivered > 0

    def test_asymmetric_degradation_is_unidirectional(self):
        def run(flow):
            net = chain_net()
            install_plan(net, FaultPlan(faults=(
                LinkDegradation(pairs=((0, 1),), loss_db=500.0,
                                symmetric=False),)))
            attach_cbr(net, [flow], interval_s=1.0, stop_s=4.0)
            net.run(until=6.0)
            return net.summary().delivered

        assert run((0, 1)) == 0   # degraded direction severed
        assert run((1, 0)) > 0    # reverse direction untouched

    def test_channel_rejects_bad_offset_shape(self):
        net = chain_net()
        with pytest.raises(ValueError):
            net.channel.set_link_offsets(np.zeros((2, 2)))


class TestClockSkew:
    def test_skew_draws_and_applies_factors(self):
        net = chain_net()
        controller = install_plan(net, FaultPlan(faults=(
            ClockSkew(sigma=0.05),)))
        net.run(until=0.1)
        assert set(controller.skew_factors) == {0, 1, 2, 3}
        for node, factor in controller.skew_factors.items():
            assert factor > 0
            assert net.macs[node].time_scale == factor

    def test_skew_is_seed_deterministic(self):
        def factors():
            net = chain_net(seed=3)
            controller = install_plan(net, FaultPlan(faults=(
                ClockSkew(sigma=0.05),)))
            net.run(until=0.1)
            return dict(controller.skew_factors)

        assert factors() == factors()


class TestEnergyDepletion:
    def test_requires_energy_meters(self):
        net = chain_net(with_energy=False)
        with pytest.raises(ValueError, match="with_energy"):
            install_plan(net, FaultPlan(faults=(
                EnergyDepletion(nodes=(1,), capacity_j=1.0),)))

    def test_depletion_is_permanent(self):
        obs = Observability()
        net = chain_net(obs=obs, with_energy=True)
        controller = install_plan(net, FaultPlan(faults=(
            EnergyDepletion(nodes=(1,), capacity_j=1e-9, poll_s=0.1),)))
        attach_cbr(net, [(1, 0)], interval_s=0.5, stop_s=4.0)
        net.run(until=6.0)
        assert controller.depleted == {1}
        assert not net.radios[1].is_on
        kinds = [e.detail["action"]
                 for e in fault_events(obs, "energy_depletion")]
        assert kinds == ["off"]


class TestValidationAndWiring:
    def test_unknown_exempt_rejected(self):
        net = chain_net()
        with pytest.raises(ValueError, match="exempt"):
            install_plan(net, FaultPlan(), exempt={99})

    def test_out_of_range_node_rejected(self):
        net = chain_net()
        with pytest.raises(ValueError, match="outside"):
            install_plan(net, FaultPlan(faults=(NodeCrash(nodes=(9,),),)))

    def test_duty_cycle_mirrors_legacy_processes(self):
        net = chain_net()
        controller = install_plan(net, FaultPlan(faults=(
            DutyCycleOutage(off_fraction=0.2),)), exempt={0, 3})
        assert len(controller.duty_cycles) == 2  # nodes 1 and 2

    def test_apply_failures_rejects_duplicate_radios(self):
        net = chain_net()
        with pytest.raises(ValueError, match="duplicate"):
            apply_failures(net.ctx, list(net.radios) + [net.radios[1]], 0.1)

    def test_apply_failures_rejects_unknown_exempt(self):
        net = chain_net()
        with pytest.raises(ValueError, match="no supplied radio"):
            apply_failures(net.ctx, net.radios, 0.1, exempt={42})
