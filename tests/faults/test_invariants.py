"""Invariant checker against synthetic ledgers — each check provoked."""

import pytest

from repro.faults.invariants import (
    InvariantViolation,
    check_invariants,
    ledger_accounting,
    off_windows,
)
from repro.obs.ledger import DropReason, PacketLedger, PacketStage

UID = ("data", 0, 0)


def fault(ledger, t, node, kind, action):
    ledger.record(t, node, "fault", PacketStage.FAULT, None,
                  kind=kind, action=action)


def clean_ledger() -> PacketLedger:
    ledger = PacketLedger()
    ledger.record(0.0, 0, "net", PacketStage.ORIGINATE, UID)
    ledger.record(0.1, 0, "phy", PacketStage.TX, UID)
    ledger.record(0.2, 1, "phy", PacketStage.RX, UID)
    ledger.record(0.2, 1, "net", PacketStage.DELIVER, UID)
    return ledger


def names(violations):
    return sorted(v.invariant for v in violations)


class TestCleanRun:
    def test_no_violations(self):
        assert check_invariants(clean_ledger()) == []

    def test_accounting_partition(self):
        acct = ledger_accounting(clean_ledger())
        assert acct["originated"] == {UID}
        assert acct["delivered"] == {UID}
        assert acct["dropped"] == set()
        assert acct["in_flight"] == set()
        assert acct["ghost_deliveries"] == set()

    def test_dropped_and_in_flight_accounted(self):
        ledger = clean_ledger()
        dead = ("data", 1, 0)
        ledger.record(0.3, 0, "net", PacketStage.ORIGINATE, dead)
        ledger.record(0.4, 0, "mac", PacketStage.DROP, dead,
                      DropReason.RETRY_EXHAUSTED)
        stuck = ("data", 2, 0)
        ledger.record(0.5, 0, "net", PacketStage.ORIGINATE, stuck)
        acct = ledger_accounting(ledger)
        assert acct["dropped"] == {dead}
        assert acct["in_flight"] == {stuck}
        assert check_invariants(ledger) == []


class TestGhostDelivery:
    def test_delivery_without_origination_flagged(self):
        ledger = clean_ledger()
        ledger.record(0.5, 2, "net", PacketStage.DELIVER, ("ghost", 9, 9))
        violations = check_invariants(ledger)
        assert names(violations) == ["ledger-conservation"]

    def test_raise_on_violation(self):
        ledger = clean_ledger()
        ledger.record(0.5, 2, "net", PacketStage.DELIVER, ("ghost", 9, 9))
        with pytest.raises(InvariantViolation, match="ledger-conservation"):
            check_invariants(ledger, raise_on_violation=True)


class TestDeadRadio:
    def test_traffic_inside_off_window_flagged(self):
        ledger = clean_ledger()
        fault(ledger, 1.0, 1, "node_crash", "off")
        ledger.record(1.5, 1, "phy", PacketStage.RX, UID)
        fault(ledger, 2.0, 1, "node_crash", "on")
        violations = check_invariants(ledger)
        assert names(violations) == ["no-dead-radio-traffic"]

    def test_boundary_events_not_flagged(self):
        # Transitions at the exact event instant are scheduler-ordered;
        # the checker uses strict bounds.
        ledger = clean_ledger()
        fault(ledger, 1.0, 1, "duty_cycle", "off")
        ledger.record(1.0, 1, "phy", PacketStage.RX, UID)
        fault(ledger, 2.0, 1, "duty_cycle", "on")
        ledger.record(2.0, 1, "phy", PacketStage.RX, UID)
        assert check_invariants(ledger) == []

    def test_unclosed_window_extends_to_end(self):
        ledger = clean_ledger()
        fault(ledger, 1.0, 1, "energy_depletion", "off")
        ledger.record(99.0, 1, "phy", PacketStage.TX, UID)
        assert names(check_invariants(ledger)) == ["no-dead-radio-traffic"]

    def test_window_reconstruction(self):
        ledger = PacketLedger()
        fault(ledger, 1.0, 4, "duty_cycle", "off")
        fault(ledger, 2.0, 4, "duty_cycle", "on")
        fault(ledger, 3.0, 4, "node_crash", "off")
        assert off_windows(ledger) == {4: [(1.0, 2.0), (3.0, float("inf"))]}

    def test_non_power_kinds_ignored(self):
        ledger = PacketLedger()
        fault(ledger, 1.0, 4, "packet_corruption", "on")
        fault(ledger, 2.0, 4, "clock_skew", "on")
        assert off_windows(ledger) == {}


class TestUniqueOrigination:
    def test_double_origination_flagged(self):
        ledger = clean_ledger()
        ledger.record(0.6, 0, "net", PacketStage.ORIGINATE, UID)
        assert "unique-origination" in names(check_invariants(ledger))


class TestSingleForwarder:
    def test_double_forward_flagged(self):
        ledger = clean_ledger()
        ledger.record(0.3, 1, "net", PacketStage.FORWARD, UID)
        ledger.record(0.4, 1, "net", PacketStage.FORWARD, UID)
        assert names(check_invariants(ledger)) == ["single-forwarder"]

    def test_forward_after_suppress_flagged(self):
        ledger = clean_ledger()
        ledger.record(0.3, 1, "net", PacketStage.SUPPRESS, UID)
        ledger.record(0.4, 1, "net", PacketStage.FORWARD, UID)
        assert names(check_invariants(ledger)) == ["single-forwarder"]

    def test_opt_out_for_retransmitting_protocols(self):
        ledger = clean_ledger()
        ledger.record(0.3, 1, "net", PacketStage.FORWARD, UID)
        ledger.record(0.4, 1, "net", PacketStage.FORWARD, UID)
        assert check_invariants(ledger, single_forwarder=False) == []

    def test_distinct_nodes_may_forward_once_each(self):
        ledger = clean_ledger()
        ledger.record(0.3, 1, "net", PacketStage.FORWARD, UID)
        ledger.record(0.4, 2, "net", PacketStage.FORWARD, UID)
        assert check_invariants(ledger) == []


def test_accepts_observability_bundle():
    from repro.obs.observe import Observability
    obs = Observability()
    obs.on_originate(0.0, 0, UID)
    obs.on_deliver(0.1, 1, UID, delay_s=0.1, hops=1)
    assert check_invariants(obs) == []
