"""fig4-on-FaultPlan reproduces the legacy DutyCycleFailure path.

The injector routes ``DutyCycleOutage`` through the very same
``apply_failures`` renewal processes (same component names, same named RNG
streams), so the match is bit-exact — stronger than the tolerance the
acceptance criteria ask for.
"""

import pytest

from repro.experiments.fig3_rr_vs_aodv import Fig3Config, run_one
from repro.experiments.fig4_failures import Fig4Config, run_cell
from repro.faults import fig4_plan

SMALL = Fig3Config(n_nodes=40, terrain_m=620.0, duration_s=10.0)


@pytest.mark.parametrize("protocol", ["aodv", "routeless"])
def test_fault_plan_matches_legacy_bit_exactly(protocol):
    legacy = run_one(protocol, 2, 1, SMALL,
                     failure_fraction=0.1, failure_cycle_s=4.0)
    planned = run_one(protocol, 2, 1, SMALL,
                      faults=fig4_plan(0.1, mean_cycle_s=4.0))
    # ExperimentResult equality covers the full metrics dict (wall_s is
    # compare=False); both paths must agree to the last bit.
    assert planned.metrics == legacy.metrics


def test_run_cell_drives_the_plan_path():
    config = Fig4Config(base=SMALL, n_pairs=2, failure_cycle_s=4.0)
    via_cell = run_cell("routeless", 0.1, 1, config)
    via_plan = run_one("routeless", 2, 1, SMALL,
                       faults=fig4_plan(0.1, mean_cycle_s=4.0))
    assert via_cell.metrics == via_plan.metrics


def test_zero_fraction_matches_no_faults():
    config = Fig4Config(base=SMALL, n_pairs=2)
    baseline = run_one("routeless", 2, 1, SMALL)
    via_cell = run_cell("routeless", 0.0, 1, config)
    assert via_cell.metrics == baseline.metrics
