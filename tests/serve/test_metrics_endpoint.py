"""The daemon's operational surface: /metrics, traces, health fingerprint."""

from __future__ import annotations

import json
import time
import urllib.request

import pytest

from repro import __version__
from repro.obs.prom import parse_exposition
from repro.serve.client import ServeClient, ServeError
from tests.serve.conftest import toy_query

TRACE = "ab" * 16


def scrape(server) -> dict:
    with urllib.request.urlopen(f"{server.base_url}/metrics",
                                timeout=30) as resp:
        assert resp.status == 200
        assert resp.headers["Content-Type"].startswith("text/plain")
        assert "version=0.0.4" in resp.headers["Content-Type"]
        return parse_exposition(resp.read().decode("utf-8"))


def sample_map(family) -> dict:
    return {tuple(sorted(labels.items())): value
            for _name, labels, value in family["samples"]}


class TestMetricsEndpoint:
    def test_exposition_always_parses(self, server):
        families = scrape(server)
        assert families["repro_uptime_seconds"]["type"] == "gauge"

    def test_lane_gauges_present(self, server):
        families = scrape(server)
        depth = sample_map(families["repro_lane_queue_depth"])
        assert depth[(("lane", "interactive"),)] == 0
        assert depth[(("lane", "batch"),)] == 0
        limits = sample_map(families["repro_lane_queue_limit"])
        assert limits[(("lane", "interactive"),)] > 0

    def test_request_metrics_accumulate(self, server):
        client = ServeClient(server.base_url, timeout_s=60)
        client.run(toy_query(), timeout_s=60)
        client.healthz()
        families = scrape(server)
        requests = sample_map(families["repro_http_requests_total"])
        assert requests[(("method", "GET"), ("route", "/v1/healthz"),
                         ("status", "200"))] >= 1
        assert requests[(("method", "POST"), ("route", "/v1/cells"),
                         ("status", "202"))] >= 1
        latency = families["repro_http_request_seconds"]
        counts = {labels["route"]: value
                  for name, labels, value in latency["samples"]
                  if name.endswith("_count")}
        assert counts["/v1/cells"] >= 1
        assert counts["/v1/healthz"] >= 1

    def test_cache_and_execution_counters(self, server):
        client = ServeClient(server.base_url, timeout_s=60)
        client.run(toy_query(), timeout_s=60)     # miss + execute
        client.run(toy_query(), timeout_s=60)     # warm hit
        families = scrape(server)
        lookups = sample_map(families["repro_cache_lookups_total"])
        assert lookups[(("outcome", "miss"),)] >= 1
        assert lookups[(("outcome", "hit"),)] >= 1
        executed = sample_map(families["repro_cells_executed_total"])
        assert executed[(("lane", "interactive"),)] == 1

    def test_key_paths_do_not_explode_route_cardinality(self, server):
        client = ServeClient(server.base_url, timeout_s=60)
        reply = client.run(toy_query(), timeout_s=60)
        client.status(reply["key"])
        families = scrape(server)
        routes = {labels["route"] for _n, labels, _v
                  in families["repro_http_requests_total"]["samples"]}
        assert "/v1/cells/{key}" in routes
        assert not any(reply["key"] in route for route in routes)


class TestTracePropagation:
    def test_trace_id_in_terminal_event_and_submit(self, server):
        client = ServeClient(server.base_url, timeout_s=60, trace_id=TRACE)
        reply = client.run(toy_query(), timeout_s=60)
        assert reply["trace_id"] == TRACE

    def test_trace_export_covers_the_pipeline(self, server):
        client = ServeClient(server.base_url, timeout_s=60, trace_id=TRACE)
        client.run(toy_query(), timeout_s=60)
        trace = client.trace()
        spans = [e for e in trace["traceEvents"] if e.get("ph") == "X"]
        names = {e["name"] for e in spans}
        assert {"queue.wait", "execute", "attempt", "sim.run"} <= names
        assert all(e["args"]["trace_id"] == TRACE for e in spans)
        # attempt nests under execute, sim.run under attempt.
        by_name = {e["name"]: e for e in spans}
        assert by_name["attempt"]["args"]["parent_id"] \
            == by_name["execute"]["args"]["span_id"]
        assert by_name["sim.run"]["args"]["parent_id"] \
            == by_name["attempt"]["args"]["span_id"]

    def test_untraced_requests_record_no_spans(self, server):
        ServeClient(server.base_url, timeout_s=60).run(toy_query(),
                                                       timeout_s=60)
        assert server.server.sink.recorded == 0

    def test_unknown_trace_404(self, server):
        client = ServeClient(server.base_url, trace_id="99" * 16)
        with pytest.raises(ServeError) as err:
            client.trace()
        assert err.value.status == 404
        assert err.value.payload["trace_id"] == "99" * 16

    def test_malformed_trace_id_400(self, server):
        status, _headers, payload = ServeClient(
            server.base_url)._request("GET", "/v1/traces/not-hex!")
        assert status == 400

    def test_malformed_trace_header_ignored(self, server):
        client = ServeClient(server.base_url, timeout_s=60,
                             trace_id="not-a-trace-id")
        # The daemon treats the request as untraced rather than failing it.
        reply = client.run(toy_query(), timeout_s=60)
        assert reply["status"] == "done"
        assert "trace_id" not in reply
        assert server.server.sink.recorded == 0

    def test_joiner_keeps_own_trace_id_in_response(self, server):
        # A second submit for an in-flight key answers with the joiner's
        # trace id even though the flight belongs to the creator's trace.
        creator = ServeClient(server.base_url, timeout_s=60, trace_id=TRACE)
        joiner_trace = "cd" * 16
        joiner = ServeClient(server.base_url, timeout_s=60,
                             trace_id=joiner_trace)
        from tests.serve import conftest

        query = toy_query(x=2.0, config={"block": True})
        first = creator.submit(query)
        try:
            second = joiner.submit(query)
            assert second["source"] == "joined"
            assert second["trace_id"] == joiner_trace
        finally:
            conftest.BLOCK.set()
        creator.wait(first["key"], timeout_s=60)


class TestHealthFingerprint:
    def test_version_instance_pid(self, server):
        payload = ServeClient(server.base_url).healthz()
        assert payload["version"] == __version__
        assert len(payload["instance"]) == 12
        assert payload["pid"] > 0
        assert payload["uptime_s"] >= 0
        assert payload["started_at"] > 0

    def test_instance_distinguishes_restarts(self, serve_factory):
        first = serve_factory()
        second = serve_factory()
        a = ServeClient(first.base_url).healthz()
        b = ServeClient(second.base_url).healthz()
        assert a["version"] == b["version"]
        assert a["instance"] != b["instance"]

    def test_stats_carries_fingerprint_too(self, server):
        stats = ServeClient(server.base_url).stats()
        assert stats["version"] == __version__
        assert stats["instance"]
        assert stats["spans_recorded"] == 0


def test_error_bodies_echo_trace_id(server):
    client = ServeClient(server.base_url, trace_id=TRACE)
    with pytest.raises(ServeError) as err:
        client.submit({"experiment": "no-such"})
    assert err.value.status == 400
    assert err.value.payload["trace_id"] == TRACE


def test_429_body_echoes_trace_id(serve_factory):
    from tests.serve import conftest

    srv = serve_factory(interactive_workers=1, queue_limit=1)
    client = ServeClient(srv.base_url, timeout_s=60, trace_id=TRACE)
    held = client.submit(toy_query(config={"block": True}))
    deadline = time.monotonic() + 30
    while (client.status(held["key"])["status"] != "running"
           and time.monotonic() < deadline):
        time.sleep(0.01)  # the worker must hold the flight, not the queue
    queued = client.submit(toy_query(x=2.0, config={"block": True}))
    try:
        with pytest.raises(ServeError) as err:
            client.submit(toy_query(seed=2, config={"block": True}))
        assert err.value.status == 429
        assert err.value.payload["trace_id"] == TRACE
        assert err.value.payload["retry_after_s"] >= 1
    finally:
        conftest.BLOCK.set()
    client.wait(held["key"], timeout_s=60)
    client.wait(queued["key"], timeout_s=60)


def test_sse_events_carry_trace_id(server):
    client = ServeClient(server.base_url, timeout_s=60, trace_id=TRACE)
    reply = client.submit(toy_query())
    events = [payload for _name, payload in client.events(reply["key"])]
    assert events, "no SSE events seen"
    assert all(e.get("trace_id") == TRACE for e in events)
    statuses = [e["status"] for e in events]
    assert statuses[-1] == "done"


def test_trace_export_is_valid_json_over_http(server):
    client = ServeClient(server.base_url, timeout_s=60, trace_id=TRACE)
    client.run(toy_query(), timeout_s=60)
    with urllib.request.urlopen(
            f"{server.base_url}/v1/traces/{TRACE}", timeout=30) as resp:
        document = json.loads(resp.read())
    assert document["traceEvents"]
