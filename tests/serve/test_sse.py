"""SSE progress streams: live following, replay, obs snapshots."""

from __future__ import annotations

from repro.serve.client import ServeClient
from tests.serve.conftest import toy_query


def test_live_stream_delivers_full_lifecycle(server):
    client = ServeClient(server.base_url)
    submitted = client.submit(toy_query(config={"sleep_s": 0.3}))
    assert submitted["http_status"] == 202
    events = list(client.events(submitted["key"], timeout_s=30))
    names = [name for name, _payload in events]
    statuses = [payload["status"] for _name, payload in events]
    assert statuses == ["queued", "running", "done"]
    assert names[-1] == "done"
    terminal = events[-1][1]
    assert terminal["terminal"] is True
    assert terminal["telemetry"]["wall_s"] > 0
    assert terminal["telemetry"]["attempts"] == 1
    assert terminal["result"]["delivery_ratio"] > 0


def test_stream_carries_obs_snapshot(server):
    client = ServeClient(server.base_url)
    reply = client.run(toy_query())
    events = [payload for _name, payload in client.events(reply["key"])]
    obs = events[-1].get("obs")
    assert obs is not None
    # The toy cell records one delivery into the bundle.
    assert obs["repro_delivery_delay_seconds"]["kind"] == "histogram"


def test_late_subscriber_gets_replay(server):
    client = ServeClient(server.base_url)
    reply = client.run(toy_query())  # settled before anyone subscribes
    events = [payload for _name, payload in client.events(reply["key"])]
    assert [e["status"] for e in events] == ["queued", "running", "done"]
    assert events[-1]["terminal"] is True


def test_cache_only_key_streams_single_done_event(serve_factory, tmp_path):
    srv = serve_factory(cache_dir=tmp_path / "warm")
    client = ServeClient(srv.base_url)
    key = client.run(toy_query())["key"]
    # A second daemon sharing the cache has no flight for the key at all.
    srv2 = serve_factory(cache_dir=tmp_path / "warm")
    events = list(ServeClient(srv2.base_url).events(key))
    assert len(events) == 1
    name, payload = events[0]
    assert name == "done"
    assert payload["source"] == "cache"
    assert payload["terminal"] is True
    assert payload["result"]["delivery_ratio"] > 0


def test_failed_stream_is_terminal(serve_factory):
    srv = serve_factory(max_retries=0)
    client = ServeClient(srv.base_url)
    reply = client.run(toy_query(protocol="crash"))
    events = [payload for _name, payload in client.events(reply["key"])]
    assert [e["status"] for e in events] == ["queued", "running", "failed"]
    assert events[-1]["terminal"] is True
    assert "crashed" in events[-1]["error"]
