"""HTTP surface: health, stats, routing, and client-error handling."""

from __future__ import annotations

import json

import pytest

from repro.serve.client import ServeClient, ServeError
from tests.serve.conftest import toy_query

GOOD_KEY = "ab" * 32


def test_healthz(server):
    payload = ServeClient(server.base_url).healthz()
    assert payload["status"] == "ok"
    assert payload["uptime_s"] >= 0


def test_stats_shape(server):
    stats = ServeClient(server.base_url).stats()
    assert stats["requests"]["submitted"] == 0
    assert stats["scheduler"]["lanes"]["interactive"]["depth"] == 0
    assert stats["scheduler"]["lanes"]["batch"]["limit"] > 0
    assert stats["cache"]["entries"] == 0
    assert stats["inflight"] == 0


def test_unknown_route_404(server):
    status, _headers, payload = ServeClient(
        server.base_url)._request("GET", "/v2/nope")
    assert status == 404
    assert "no route" in payload["error"]


def test_unknown_key_404(server):
    client = ServeClient(server.base_url)
    with pytest.raises(ServeError) as err:
        client.status(GOOD_KEY)
    assert err.value.status == 404


def test_malformed_key_400(server):
    client = ServeClient(server.base_url)
    with pytest.raises(ServeError) as err:
        client.status("not-a-key")
    assert err.value.status == 400


def test_cells_requires_post(server):
    status, _headers, payload = ServeClient(
        server.base_url)._request("GET", "/v1/cells")
    assert status == 405


def test_bad_json_body_400(server):
    client = ServeClient(server.base_url)
    conn = client._connection()
    try:
        conn.request("POST", "/v1/cells", body=b"{nope",
                     headers={"Content-Type": "application/json"})
        response = conn.getresponse()
        payload = json.loads(response.read())
        assert response.status == 400
        assert "JSON" in payload["error"]
    finally:
        conn.close()


@pytest.mark.parametrize("mutation, fragment", [
    ({"experiment": "no-such-exp"}, "unknown experiment"),
    ({"protocol": "no-such-proto"}, "not in"),
    ({"x": "wat"}, "'x'"),
    ({"config": {"bogus_field": 1}}, "bad config override"),
    ({"lane": "express"}, "lane"),
    ({"extra_field": 1}, "unknown fields"),
])
def test_bad_queries_400(server, mutation, fragment):
    query = toy_query()
    query.update(mutation)
    with pytest.raises(ServeError) as err:
        ServeClient(server.base_url).submit(query)
    assert err.value.status == 400
    assert fragment in str(err.value)


def test_malformed_request_line(server):
    import socket
    host, port = server.server.config.host, server.server.port
    with socket.create_connection((host, port), timeout=10) as sock:
        sock.sendall(b"GARBAGE\r\n\r\n")
        reply = sock.recv(4096)
    assert b"400" in reply.split(b"\r\n", 1)[0]
