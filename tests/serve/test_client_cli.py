"""The ``repro query`` CLI and client conveniences."""

from __future__ import annotations

import json

from repro.experiments import cli as experiments_cli
from repro.serve.client import main as query_main
from tests.serve import conftest as toy


def test_query_cli_runs_cell_to_result(server, capsys):
    rc = query_main(["servetoy", "--server", server.base_url,
                     "--protocol", "alpha", "-x", "1.0", "--seed", "1"])
    assert rc == 0
    reply = json.loads(capsys.readouterr().out)
    assert reply["status"] == "done"
    assert reply["result"]["delivery_ratio"] > 0
    assert len(toy.CALLS) == 1


def test_query_cli_set_overrides_config(server, capsys):
    rc = query_main(["servetoy", "--server", server.base_url,
                     "--protocol", "alpha", "-x", "1.0", "--seed", "1",
                     "--set", "n_nodes=99", "--set", "duration_s=2.5"])
    assert rc == 0
    reply = json.loads(capsys.readouterr().out)
    assert reply["status"] == "done"
    # A different config is a different cell: fresh key, fresh execution.
    rc2 = query_main(["servetoy", "--server", server.base_url,
                      "--protocol", "alpha", "-x", "1.0", "--seed", "1"])
    assert rc2 == 0
    other = json.loads(capsys.readouterr().out)
    assert other["key"] != reply["key"]
    assert len(toy.CALLS) == 2


def test_query_cli_no_follow_prints_submit_reply(server, capsys):
    rc = query_main(["servetoy", "--server", server.base_url,
                     "--protocol", "alpha", "-x", "2.0", "--seed", "2",
                     "--no-follow"])
    assert rc == 0
    reply = json.loads(capsys.readouterr().out)
    assert reply["status"] in ("queued", "running", "done")
    assert reply["http_status"] in (200, 202)


def test_query_cli_stats(server, capsys):
    rc = query_main(["--stats", "--server", server.base_url])
    assert rc == 0
    stats = json.loads(capsys.readouterr().out)
    assert "scheduler" in stats and "cache" in stats


def test_query_cli_missing_args(server, capsys):
    rc = query_main(["servetoy", "--server", server.base_url])
    assert rc == 2
    assert "missing required" in capsys.readouterr().err


def test_query_cli_failed_cell_exit_code(server, capsys):
    rc = query_main(["servetoy", "--server", server.base_url,
                     "--protocol", "crash", "-x", "1.0", "--seed", "1"])
    assert rc == 1
    reply = json.loads(capsys.readouterr().out)
    assert reply["status"] == "failed"


def test_experiments_cli_dispatches_query_and_cache(server, capsys, tmp_path):
    rc = experiments_cli.main(["query", "--stats",
                               "--server", server.base_url])
    assert rc == 0
    assert "scheduler" in capsys.readouterr().out
    rc = experiments_cli.main(["cache", "stats",
                               "--cache-dir", str(tmp_path / "cache")])
    assert rc == 0
    assert "entries" in capsys.readouterr().out
