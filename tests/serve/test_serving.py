"""End-to-end serving semantics: cold execution, dedup, warm replay,
failure reporting, admission control, and lane selection."""

from __future__ import annotations

import threading
import time

import pytest

from repro.serve.client import ServeClient, ServeError
from tests.serve import conftest as toy
from tests.serve.conftest import toy_query


def _wait_status(client, key, wanted, timeout_s=10.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        payload = client.status(key)
        if payload["status"] in wanted:
            return payload
        time.sleep(0.02)
    raise AssertionError(f"cell {key} never reached {wanted}")


def test_cold_cell_executes_once_and_returns_result(server):
    client = ServeClient(server.base_url)
    reply = client.run(toy_query())
    assert reply["status"] == "done"
    assert reply["result"]["delivery_ratio"] == pytest.approx(0.91)
    assert toy.CALLS == [("alpha", 1.0, 1)]
    # The settled cell is readable by key, now from the cache.
    status = client.status(reply["key"])
    assert status["status"] == "done"
    assert status["result"]["delivery_ratio"] == pytest.approx(0.91)


def test_warm_replay_skips_executor(server):
    client = ServeClient(server.base_url)
    first = client.run(toy_query())
    again = client.run(toy_query())
    assert again["http_status"] == 200
    assert again["source"] == "cache"
    assert again["result"] == first["result"]
    assert len(toy.CALLS) == 1
    stats = client.stats()
    assert stats["requests"]["warm_answers"] == 1
    assert stats["scheduler"]["executed"] == 1


def test_concurrent_identical_requests_dedup_to_one_execution(server):
    client = ServeClient(server.base_url)
    query = toy_query(config={"sleep_s": 0.5})
    replies: dict[str, dict] = {}
    barrier = threading.Barrier(2)

    def go(tag):
        barrier.wait(timeout=10)
        replies[tag] = ServeClient(server.base_url).run(query, timeout_s=30)

    threads = [threading.Thread(target=go, args=(t,)) for t in ("a", "b")]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=30)

    assert {r["status"] for r in replies.values()} == {"done"}
    assert replies["a"]["result"] == replies["b"]["result"]
    assert len(toy.CALLS) == 1, "single-flight must collapse to 1 execution"
    stats = client.stats()
    assert stats["scheduler"]["executed"] == 1
    assert (stats["requests"]["dedup_joined"]
            + stats["requests"]["warm_answers"]) == 1


def test_failing_cell_reports_failed_with_attempts(serve_factory):
    srv = serve_factory(max_retries=1, backoff_s=0.0)
    client = ServeClient(srv.base_url)
    reply = client.run(toy_query(protocol="crash"))
    assert reply["status"] == "failed"
    assert "crashed" in reply["error"]
    assert reply["attempts"] == 2  # first try + one retry
    assert len(toy.CALLS) == 2
    # Failure is not cached: the key stays cold.
    stats = client.stats()
    assert stats["cache"]["entries"] == 0
    status = client.status(reply["key"])
    assert status["status"] == "failed"


def test_admission_control_full_lane_429_with_retry_after(serve_factory):
    srv = serve_factory(queue_limit=1, interactive_workers=1)
    client = ServeClient(srv.base_url)
    blocked = toy_query(config={"block": True})
    try:
        first = client.submit({**blocked, "seed": 1})
        # Wait until the worker pulled it (queue empty again) ...
        _wait_status(client, first["key"], {"running"})
        # ... then one more fills the single queue slot ...
        second = client.submit({**blocked, "seed": 2})
        assert second["status"] == "queued"
        # ... and the next is refused with backpressure advice.
        with pytest.raises(ServeError) as err:
            client.submit({**blocked, "seed": 3})
        assert err.value.status == 429
        assert err.value.payload["retry_after_s"] >= 1
        assert client.stats()["requests"]["rejected"] == 1
    finally:
        toy.BLOCK.set()
    # Released cells settle normally; the rejected one never ran.
    done = _wait_status(client, second["key"], {"done"}, timeout_s=30)
    assert done["status"] == "done"
    assert len([c for c in toy.CALLS]) == 2


def test_lane_selection_cost_heuristic_and_override(server):
    client = ServeClient(server.base_url)
    # Default toy cost: 10 nodes x 1 s = 10 → interactive.
    small = client.run(toy_query())
    small_events = [p for _n, p in client.events(small["key"])]
    assert small_events[0]["lane"] == "interactive"
    # Sweep-sized config → batch lane.
    big = client.run(toy_query(seed=2,
                               config={"n_nodes": 500, "duration_s": 60.0}))
    big_events = [p for _n, p in client.events(big["key"])]
    assert big_events[0]["lane"] == "batch"
    # Explicit lane override beats the heuristic.
    forced = client.run(toy_query(seed=3, lane="batch"))
    forced_events = [p for _n, p in client.events(forced["key"])]
    assert forced_events[0]["lane"] == "batch"
    stats = client.stats()["scheduler"]["lanes"]
    assert stats["interactive"]["executed"] == 1
    assert stats["batch"]["executed"] == 2


def test_batch_lane_cannot_starve_interactive(serve_factory):
    srv = serve_factory(interactive_workers=1, batch_workers=1)
    client = ServeClient(srv.base_url)
    # Park the batch lane's only worker.
    parked = client.submit(toy_query(lane="batch", config={"block": True}))
    _wait_status(client, parked["key"], {"running"})
    # Interactive work still flows.
    quick = client.run(toy_query(seed=5), timeout_s=10)
    assert quick["status"] == "done"
    toy.BLOCK.set()
    _wait_status(client, parked["key"], {"done"}, timeout_s=30)
