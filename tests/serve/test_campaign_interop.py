"""The daemon and the campaign runner share one content-address space:
a cell served by one is warm for the other, byte-for-byte."""

from __future__ import annotations

from repro.campaign import run_spec
from repro.campaign.fingerprint import cell_key
from repro.serve.client import ServeClient
from repro.serve.schemas import parse_cell_query, resolve_cell
from tests.serve import conftest as toy
from tests.serve.conftest import ToyConfig, servetoy_spec, toy_query


def test_served_key_matches_campaign_key():
    resolved = resolve_cell(parse_cell_query(toy_query(protocol="beta",
                                                       x=2.0, seed=2)))
    expected = cell_key("servetoy", "beta", 2.0, 2, ToyConfig(), {})
    assert resolved.key == expected


# Crash-free grid used on both sides of the interop tests; the daemon
# hashes the same overridden config, so keys line up with the campaign's.
_GRID_CONFIG = ToyConfig(protocols=("alpha", "beta"))
_GRID_OVERRIDE = {"protocols": ["alpha", "beta"]}


def test_campaign_warms_the_daemon(serve_factory, tmp_path):
    cache_dir = tmp_path / "shared-cache"
    outcome = run_spec(servetoy_spec(_GRID_CONFIG), cache_dir=cache_dir)
    executed_by_campaign = len(toy.CALLS)
    assert executed_by_campaign == outcome.summary["total_cells"] == 8

    srv = serve_factory(cache_dir=cache_dir)
    reply = ServeClient(srv.base_url).run(toy_query(
        protocol="beta", x=2.0, seed=2, config=_GRID_OVERRIDE))
    assert reply["http_status"] == 200
    assert reply["source"] == "cache"
    assert len(toy.CALLS) == executed_by_campaign, \
        "daemon must not re-execute campaign-cached cells"


def test_daemon_warms_the_campaign(serve_factory, tmp_path):
    cache_dir = tmp_path / "shared-cache"
    srv = serve_factory(cache_dir=cache_dir)
    client = ServeClient(srv.base_url)
    for protocol in ("alpha", "beta"):
        for x in (1.0, 2.0):
            for seed in (1, 2):
                done = client.run(toy_query(protocol=protocol, x=x,
                                            seed=seed,
                                            config=_GRID_OVERRIDE))
                assert done["status"] == "done"
    served = len(toy.CALLS)
    assert served == 8

    outcome = run_spec(servetoy_spec(_GRID_CONFIG), cache_dir=cache_dir)
    assert len(toy.CALLS) == served, \
        "campaign must not re-execute daemon-cached cells"
    assert outcome.summary["cache_hits"] == 8
    assert outcome.summary["executed"] == 0


def test_faulted_cell_gets_distinct_key():
    plain = resolve_cell(parse_cell_query(toy_query()))
    faulted = resolve_cell(parse_cell_query(toy_query(
        faults={"name": "chaos", "faults": []})))
    assert plain.key != faulted.key
