"""Serve-test fixtures: a toy registered experiment and a daemon thread.

The toy experiment registers itself in :mod:`repro.experiments.registry`
under the name ``servetoy`` at import time (once per session), so the
daemon resolves it exactly the way it resolves fig1 — same registry, same
content addressing — while cells stay microsecond-cheap and fully
controllable (blocking, crashing, observable) from the tests.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

import pytest

from repro.experiments.registry import experiment
from repro.experiments.registry import unregister as registry_unregister
from repro.serve.server import ServeConfig, ServerThread
from repro.stats.metrics import MetricsSummary


@dataclass(frozen=True, kw_only=True)
class ToyConfig:
    """Cost fields mirror the real configs so lane selection applies."""

    n_nodes: int = 10
    duration_s: float = 1.0
    #: Wall-clock the cell burns; lets tests hold a flight open.
    sleep_s: float = 0.0
    #: When true the cell parks on :data:`BLOCK` until a test releases it.
    block: bool = False
    protocols: tuple = ("alpha", "beta", "crash")


#: In-process execution log: (protocol, x, seed) per *executed* cell.
CALLS: list[tuple] = []

#: Gate blocked toy cells wait on (admission-control tests).
BLOCK = threading.Event()


def toy_summary(protocol: str, x: float, seed: int) -> MetricsSummary:
    return MetricsSummary(
        generated=10, delivered=9, delivery_ratio=0.9 + seed / 100.0,
        avg_delay_s=x * 0.01 + seed * 0.001, avg_hops=2.0 + x,
        mac_packets=int(10 * x) + seed)


def toy_run_one(protocol, x, seed, config, obs=None, faults=None):
    CALLS.append((protocol, x, seed))
    if config.sleep_s:
        time.sleep(config.sleep_s)
    if config.block:
        BLOCK.wait(timeout=30.0)
    if protocol == "crash":
        raise ValueError(f"toy cell ({protocol}, {x:g}, {seed}) crashed")
    if obs is not None:
        obs.on_deliver(0.5, node=1, uid=("data", 0, seed),
                       delay_s=0.1 * x, hops=2)
    return toy_summary(protocol, x, seed)


def servetoy_spec(config: ToyConfig | None = None):
    from repro.campaign import CampaignSpec
    config = config if config is not None else ToyConfig()
    return CampaignSpec(name="servetoy", run_one=toy_run_one,
                        protocols=config.protocols, xs=(1.0, 2.0),
                        seeds=(1, 2), config=config)


@pytest.fixture(scope="session", autouse=True)
def _register_servetoy():
    """Plug the toy into the live registry for the serve suite only —
    registering at conftest import time would leak ``servetoy`` into the
    registry every other test in the session sees."""
    experiment(name="servetoy", description="serve-test toy sweep",
               panels=("delivery_ratio",), x_label="x")(servetoy_spec)
    yield
    registry_unregister("servetoy")


def toy_query(protocol="alpha", x=1.0, seed=1, **rest) -> dict:
    return {"experiment": "servetoy", "protocol": protocol, "x": x,
            "seed": seed, **rest}


@pytest.fixture(autouse=True)
def _reset_toy_state():
    CALLS.clear()
    BLOCK.clear()
    yield
    BLOCK.set()  # never leave executor threads parked across tests


@pytest.fixture
def serve_factory(tmp_path):
    """``make(**ServeConfig overrides) -> ServerThread`` with teardown."""
    started: list[ServerThread] = []

    def make(**overrides) -> ServerThread:
        overrides.setdefault("cache_dir", tmp_path / "cache")
        config = ServeConfig(port=0, **overrides)
        thread = ServerThread(config).__enter__()
        started.append(thread)
        return thread

    yield make
    BLOCK.set()
    for thread in started:
        thread.__exit__(None, None, None)


@pytest.fixture
def server(serve_factory) -> ServerThread:
    """A default daemon on an ephemeral port with a fresh cache."""
    return serve_factory()
