"""Multi-process lease contention: real worker subprocesses hammering one
spool, including a SIGKILLed worker whose cells must be stolen.

These are the slowest tests in the dist suite (a few seconds each): they
launch actual ``python -m repro.dist.worker`` processes the same way the
ssh backend's ``local`` pseudo-host does.
"""

import json
import os
import signal
import time
from pathlib import Path

import pytest

from repro.campaign.cache import ResultCache
from repro.dist.hosts import HostSpec
from repro.dist.lease import LeaseDir
from repro.dist.spool import CellSpec, WorkSpool
from repro.dist.ssh import launch_worker
from tests.campaign import fakes
from tests.campaign.fakes import FakeConfig

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture(autouse=True)
def _tests_importable_by_workers(monkeypatch):
    existing = os.environ.get("PYTHONPATH", "")
    parts = [str(REPO_ROOT), str(REPO_ROOT / "src")]
    if existing:
        parts.append(existing)
    monkeypatch.setenv("PYTHONPATH", os.pathsep.join(parts))


def grid_cells(n: int):
    return [CellSpec(key=f"{i:03d}".ljust(40, "c"), protocol="alpha",
                     x=float(i), seed=i) for i in range(n)]


def make_spool(tmp_path, run_one, cells, **over) -> WorkSpool:
    kwargs = dict(
        payload={"run_one": run_one, "config": FakeConfig(), "extra": {}},
        campaign="hammer", ttl_s=30.0, max_retries=1, backoff_s=0.0,
        cache_dir=tmp_path / "cache")
    kwargs.update(over)
    return WorkSpool.create(tmp_path / "spool", cells, **kwargs)


def wait_for(predicate, timeout_s: float, what: str):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.05)
    raise AssertionError(f"timed out after {timeout_s:.0f}s waiting for "
                         f"{what}")


def reap(workers):
    for worker in workers:
        if worker.process.poll() is None:
            worker.process.terminate()
        try:
            worker.process.wait(timeout=10.0)
        except Exception:
            worker.process.kill()


def test_four_workers_settle_every_cell_exactly_once(tmp_path):
    # slowish (~0.3s/cell) so every worker is up before the spool drains —
    # the work-spread assertion below needs real overlap, not a racer that
    # finishes everything while its peers are still importing.
    cells = grid_cells(12)
    spool = make_spool(tmp_path, fakes.slowish_run_one, cells)
    host = HostSpec("local", workers=4)
    workers = [launch_worker(host, spool.directory, i, poll_s=0.05)
               for i in range(4)]
    try:
        wait_for(spool.all_settled, 60.0, "the spool to settle")
    finally:
        reap(workers)

    # Exactly one done marker per cell, none failed.
    assert spool.done_keys() == {c.key for c in cells}
    assert spool.failed_keys() == set()
    # Every result is in the shared cache.
    cache = ResultCache(tmp_path / "cache")
    for cell in cells:
        assert cache.get(cell.key) is not None
    # All leases were released; nothing is left in flight.
    assert spool.in_flight_keys() == set()
    # Work was actually spread across processes.
    stats = spool.worker_stats()
    assert sum(s["cells_done"] for s in stats) >= len(cells)
    assert sum(1 for s in stats if s["cells_done"] > 0) >= 2


def test_sigkilled_workers_cells_are_stolen_after_ttl(tmp_path):
    ttl_s = 2.0
    cells = grid_cells(10)
    # ~0.3s per cell: slow enough to catch a worker mid-cell.
    spool = make_spool(tmp_path, fakes.slowish_run_one, cells, ttl_s=ttl_s)
    host = HostSpec("local", workers=2)
    workers = [launch_worker(host, spool.directory, i, poll_s=0.05)
               for i in range(2)]
    victim, survivor = workers[0], workers[1]
    victim_id = f"{host.name}-0-{os.getpid()}"
    leases = LeaseDir(spool.leases_dir, worker_id="observer", ttl_s=ttl_s)

    def victim_holds_a_lease():
        for key in list(leases.live_keys()):
            info = leases.info(key)
            if info is not None and info.worker == victim_id:
                return True
        return False

    try:
        wait_for(victim_holds_a_lease, 30.0,
                 "the victim to claim a cell")
        os.kill(victim.process.pid, signal.SIGKILL)
        victim.process.wait(timeout=10.0)
        assert victim.process.returncode == -signal.SIGKILL

        wait_for(spool.all_settled, 60.0,
                 "the survivor to finish the spool")
    finally:
        reap(workers)

    assert spool.done_keys() == {c.key for c in cells}
    # The victim died holding a lease; after the TTL the survivor stole it.
    markers = [spool.read_done(c.key) for c in cells]
    stolen = [m for m in markers if m.get("stolen")]
    survivor_stats = json.loads(
        (spool.workers_dir / f"{host.name}-1-{os.getpid()}.json").read_text())
    assert stolen or survivor_stats["steals"] >= 1
    # Everything the victim abandoned was re-executed by the survivor:
    # every done marker names a live (non-victim) worker or was stolen.
    owners = {m["worker"] for m in markers}
    assert any(owner != victim_id for owner in owners)
    cache = ResultCache(tmp_path / "cache")
    for cell in cells:
        assert cache.get(cell.key) is not None


def test_two_workers_contending_produce_no_duplicate_executions_per_marker(
        tmp_path):
    """At-least-once overall, but each *marker* is written once: the done
    marker names exactly one worker and one attempt count."""
    cells = grid_cells(12)
    spool = make_spool(tmp_path, fakes.counting_run_one, cells)
    host = HostSpec("local", workers=3)
    workers = [launch_worker(host, spool.directory, i, poll_s=0.02)
               for i in range(3)]
    try:
        wait_for(spool.all_settled, 60.0, "the spool to settle")
    finally:
        reap(workers)
    for cell in cells:
        marker = spool.read_done(cell.key)
        assert marker["key"] == cell.key
        assert isinstance(marker["worker"], str)
        assert marker["attempts"] >= 1
