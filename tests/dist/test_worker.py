"""WorkerAgent semantics, in-process: drain, shard preference, stealing,
quarantine markers, and observe-mode snapshots."""

import os
import time

import pytest

from repro.campaign.cache import ResultCache
from repro.dist.spool import CellSpec, WorkSpool
from repro.dist.worker import WorkerAgent, run_worker
from tests.campaign import fakes
from tests.campaign.fakes import FakeConfig


def grid_cells(protocols=("alpha", "bad"), xs=(1.0, 2.0), seeds=(1, 2)):
    cells = []
    for protocol in protocols:
        for x in xs:
            for seed in seeds:
                cells.append(CellSpec(
                    key=f"{protocol}-{x:g}-{seed}".ljust(40, "f"),
                    protocol=protocol, x=x, seed=seed))
    return cells


def make_spool(tmp_path, run_one, cells, **over) -> WorkSpool:
    kwargs = dict(
        payload={"run_one": run_one, "config": FakeConfig(), "extra": {}},
        campaign="fake", ttl_s=30.0, max_retries=1, backoff_s=0.0,
        cache_dir=tmp_path / "cache")
    kwargs.update(over)
    return WorkSpool.create(tmp_path / "spool", cells, **kwargs)


@pytest.fixture(autouse=True)
def _reset_call_log():
    fakes.CALLS.clear()


class TestDrain:
    def test_single_worker_settles_everything(self, tmp_path):
        cells = grid_cells(protocols=("alpha",))
        spool = make_spool(tmp_path, fakes.counting_run_one, cells)
        settled = run_worker(spool.directory, worker_id="w1")
        assert settled == len(cells)
        assert spool.all_settled()
        cache = ResultCache(tmp_path / "cache")
        for cell in cells:
            assert cache.get(cell.key) is not None
        (stats,) = spool.worker_stats()
        assert stats["worker"] == "w1"
        assert stats["cells_done"] == len(cells)
        assert stats["state"] == "exited"

    def test_settled_cells_are_skipped(self, tmp_path):
        cells = grid_cells(protocols=("alpha",))
        spool = make_spool(tmp_path, fakes.counting_run_one, cells)
        spool.mark_done(cells[0].key, {"worker": "elsewhere"})
        settled = run_worker(spool.directory, worker_id="w1")
        assert settled == len(cells) - 1
        assert (cells[0].protocol, cells[0].x, cells[0].seed) not in fakes.CALLS

    def test_failing_cell_quarantined_not_fatal(self, tmp_path):
        cells = grid_cells()  # "bad"/x=1.0 cells raise forever
        spool = make_spool(tmp_path, fakes.failing_run_one, cells)
        run_worker(spool.directory, worker_id="w1")
        assert spool.all_settled()
        cursed = [c for c in cells if c.protocol == "bad" and c.x == 1.0]
        assert spool.failed_keys() == {c.key for c in cursed}
        marker = spool.read_failed(cursed[0].key)
        assert marker["attempts"] == 2           # max_retries=1 -> 2 attempts
        assert "cursed" in marker["error"]
        assert marker["worker"] == "w1"

    def test_stop_flag_halts_the_loop(self, tmp_path):
        cells = grid_cells(protocols=("alpha",))
        spool = make_spool(tmp_path, fakes.counting_run_one, cells)
        spool.request_stop()
        assert run_worker(spool.directory, worker_id="w1") == 0
        assert not spool.settled_keys()

    def test_max_cells_bounds_the_drain(self, tmp_path):
        cells = grid_cells(protocols=("alpha",))
        spool = make_spool(tmp_path, fakes.counting_run_one, cells)
        assert run_worker(spool.directory, worker_id="w1", max_cells=2) == 2
        assert len(spool.settled_keys()) == 2

    def test_missing_cache_dir_refused(self, tmp_path):
        spool = make_spool(tmp_path, fakes.counting_run_one,
                           grid_cells(protocols=("alpha",)), cache_dir=None)
        with pytest.raises(RuntimeError, match="cache_dir"):
            WorkerAgent(WorkSpool(spool.directory), worker_id="w1")


class TestSharding:
    def test_sharded_worker_prefers_its_own_shard(self, tmp_path):
        cells = grid_cells(protocols=("alpha", "beta"))
        spool = make_spool(tmp_path, fakes.counting_run_one, cells, shards=2)
        mine = [c for c in WorkSpool(spool.directory).cells() if c.shard == 0]
        others = [c for c in WorkSpool(spool.directory).cells()
                  if c.shard != 0]
        for cell in others:                      # peers already settled them
            spool.mark_done(cell.key, {"worker": "peer"})
        settled = run_worker(spool.directory, worker_id="w1", shard=0,
                             steal=False)
        assert settled == len(mine)
        assert spool.all_settled()

    def test_steal_pass_drains_foreign_unstarted_shard(self, tmp_path):
        cells = grid_cells(protocols=("alpha", "beta"))
        spool = make_spool(tmp_path, fakes.counting_run_one, cells, shards=2)
        # Shard 1's array task never starts; shard 0's worker (with stealing
        # on, the default) must still finish the whole spool.
        settled = run_worker(spool.directory, worker_id="w1", shard=0)
        assert settled == len(cells)
        assert spool.all_settled()


class TestStealing:
    def test_expired_peer_lease_is_stolen_and_marked(self, tmp_path):
        cells = grid_cells(protocols=("alpha",))
        spool = make_spool(tmp_path, fakes.counting_run_one, cells,
                           ttl_s=5.0)
        # A peer claimed the first cell, then died: backdate past the TTL.
        dead = spool.lease_dir("dead-worker")
        dead.claim(cells[0].key)
        stamp = time.time() - 6.0
        os.utime(dead._path(cells[0].key), (stamp, stamp))

        agent = WorkerAgent(WorkSpool(spool.directory), worker_id="w2",
                            poll_s=0.01)
        assert agent.run() == len(cells)
        assert agent.steals == 1
        assert spool.read_done(cells[0].key)["stolen"] is True
        assert spool.read_done(cells[1].key)["stolen"] is False

    def test_live_peer_lease_is_respected(self, tmp_path):
        cells = grid_cells(protocols=("alpha",))
        spool = make_spool(tmp_path, fakes.counting_run_one, cells)
        peer = spool.lease_dir("peer")
        peer.claim(cells[0].key)

        agent = WorkerAgent(WorkSpool(spool.directory), worker_id="w2",
                            poll_s=0.01, max_cells=len(cells) - 1)
        assert agent.run() == len(cells) - 1
        assert agent.steals == 0
        assert not spool.is_settled(cells[0].key)

    def test_claim_then_settled_race_releases_and_skips(self, tmp_path):
        cells = grid_cells(protocols=("alpha",))
        spool = make_spool(tmp_path, fakes.counting_run_one, cells)
        agent = WorkerAgent(WorkSpool(spool.directory), worker_id="w2")
        # The cell settles between the agent's scan and its claim.
        spool.mark_done(cells[0].key, {"worker": "peer"})
        assert agent._claim_and_run(cells[0], allow_steal=True) is False
        assert agent.leases.info(cells[0].key) is None  # lease released


class TestObserve:
    def test_observe_mode_records_snapshot_in_marker(self, tmp_path):
        cells = grid_cells(protocols=("alpha",), xs=(1.0,), seeds=(1,))
        spool = make_spool(tmp_path, fakes.observed_run_one, cells,
                           observe=True)
        run_worker(spool.directory, worker_id="w1")
        marker = spool.read_done(cells[0].key)
        snapshot = marker["obs_snapshot"]
        assert "fake_cells_total" in snapshot  # registry snapshot, flat

    def test_plain_mode_has_no_snapshot(self, tmp_path):
        cells = grid_cells(protocols=("alpha",), xs=(1.0,), seeds=(1,))
        spool = make_spool(tmp_path, fakes.counting_run_one, cells)
        run_worker(spool.directory, worker_id="w1")
        assert "obs_snapshot" not in spool.read_done(cells[0].key)
