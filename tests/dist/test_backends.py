"""Execution backends end-to-end through ``run_campaign``.

The ssh backend runs against the ``local`` pseudo-host only (plain
subprocesses, no sshd), which is exactly how the CI dist-smoke runs it.
"""

import os
from pathlib import Path

import pytest

from repro.campaign import run_campaign
from repro.dist import DistOptions, backend_names, get_backend
from repro.dist.backend import LocalPoolBackend, fold_worker_stats
from repro.dist.spool import WorkSpool
from repro.dist.worker import run_worker
from repro.stats.series import METRIC_FIELDS
from tests.campaign import fakes
from tests.campaign.fakes import FakeConfig

REPO_ROOT = Path(__file__).resolve().parents[2]

PROTOCOLS = ("alpha", "beta")
XS = (1.0, 2.0)
SEEDS = (1, 2)
GRID_SIZE = len(PROTOCOLS) * len(XS) * len(SEEDS)


@pytest.fixture(autouse=True)
def _reset_call_log():
    fakes.CALLS.clear()


@pytest.fixture(autouse=True)
def _tests_importable_by_workers(monkeypatch):
    """Worker subprocesses must import ``tests.campaign.fakes`` (the spool
    payload pickles run_one by reference)."""
    existing = os.environ.get("PYTHONPATH", "")
    parts = [str(REPO_ROOT), str(REPO_ROOT / "src")]
    if existing:
        parts.append(existing)
    monkeypatch.setenv("PYTHONPATH", os.pathsep.join(parts))


def grid_kwargs(config=FakeConfig(), **over):
    kwargs = dict(runner_name="fake", protocols=PROTOCOLS, xs=XS,
                  seeds=SEEDS, config=config)
    kwargs.update(over)
    return kwargs


def assert_identical(results_a, results_b):
    assert set(results_a) == set(results_b)
    for protocol in results_a:
        a, b = results_a[protocol], results_b[protocol]
        assert a.xs == b.xs
        for x in a.xs:
            for metric in METRIC_FIELDS:
                assert a.metric(x, metric) == b.metric(x, metric)


class TestRegistry:
    def test_builtin_backends_registered(self):
        assert backend_names() == ["job-array", "local-pool", "ssh"]

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown execution backend"):
            get_backend("carrier-pigeon")

    def test_get_backend_builds_instances(self):
        assert isinstance(get_backend("local-pool"), LocalPoolBackend)
        assert get_backend("ssh").name == "ssh"
        assert get_backend("job-array").name == "job-array"


class TestLocalPool:
    def test_backend_name_is_bit_identical_to_default(self, tmp_path):
        baseline = run_campaign(fakes.counting_run_one, **grid_kwargs())
        named = run_campaign(fakes.counting_run_one,
                             **grid_kwargs(backend="local-pool"))
        assert_identical(baseline.results, named.results)
        assert named.summary["executed"] == GRID_SIZE
        assert named.summary["dist"] is None          # no dist machinery ran

    def test_backend_instance_accepted(self, tmp_path):
        outcome = run_campaign(fakes.counting_run_one,
                               **grid_kwargs(backend=LocalPoolBackend()))
        assert outcome.summary["executed"] == GRID_SIZE


class TestSshBackendLoopback:
    def dist_kwargs(self, tmp_path, **over):
        options = DistOptions(lease_ttl_s=10.0, poll_s=0.05)
        kwargs = grid_kwargs(
            backend="ssh", dist_options=options, workers=2,
            campaign_dir=tmp_path / "campaign",
            cache_dir=tmp_path / "cache")
        kwargs.update(over)
        return kwargs

    def test_loopback_campaign_matches_local_results(self, tmp_path):
        baseline = run_campaign(fakes.counting_run_one, **grid_kwargs())
        outcome = run_campaign(fakes.counting_run_one,
                               **self.dist_kwargs(tmp_path))
        assert_identical(baseline.results, outcome.results)
        assert outcome.summary["completed"] == GRID_SIZE
        assert not outcome.quarantined

        dist = outcome.summary["dist"]
        assert dist["backend"] == "ssh"
        assert dist["workers_launched"] >= 2
        assert dist["cells_folded"] == GRID_SIZE
        assert dist["cells_spooled"] == GRID_SIZE
        # Worker executions count as campaign executions in the journal.
        assert outcome.summary["executed"] == GRID_SIZE

    def test_journal_has_no_double_counts(self, tmp_path):
        from repro.campaign.journal import CampaignJournal
        outcome = run_campaign(fakes.counting_run_one,
                               **self.dist_kwargs(tmp_path))
        journal = CampaignJournal(tmp_path / "campaign")
        records = journal.load()
        assert len(records) == GRID_SIZE            # one record per key
        lines = journal.journal_path.read_text().strip().splitlines()
        assert len(lines) == GRID_SIZE              # and one *line* per key
        assert outcome.summary["executed"] == GRID_SIZE

    def test_resume_after_dist_run_is_all_cache_hits(self, tmp_path):
        run_campaign(fakes.counting_run_one, **self.dist_kwargs(tmp_path))
        fakes.CALLS.clear()
        second = run_campaign(fakes.counting_run_one,
                              **grid_kwargs(campaign_dir=tmp_path / "campaign",
                                            cache_dir=tmp_path / "cache",
                                            resume=True))
        assert fakes.CALLS == []
        assert second.summary["executed"] == 0
        assert (second.summary["cache_hits"]
                + second.summary["resumed_from_journal"]) == GRID_SIZE

    def test_quarantine_propagates_from_workers(self, tmp_path):
        outcome = run_campaign(
            fakes.failing_run_one,
            **self.dist_kwargs(tmp_path,
                               protocols=("alpha", "bad"), max_retries=1))
        cursed = [f for f in outcome.quarantined
                  if f.cell.protocol == "bad" and f.cell.x == 1.0]
        assert len(cursed) == len(SEEDS)
        assert outcome.summary["quarantined"] == len(SEEDS)
        assert outcome.summary["executed"] == GRID_SIZE - len(SEEDS)
        assert outcome.summary["completed"] == GRID_SIZE  # incl. quarantined

    def test_summary_json_feeds_obs_cli(self, tmp_path, capsys):
        from repro.experiments.obs_cli import main as obs_main
        run_campaign(fakes.counting_run_one, **self.dist_kwargs(tmp_path))
        rc = obs_main(["summary", "--campaign-dir",
                       str(tmp_path / "campaign")])
        assert rc == 0
        out = capsys.readouterr().out
        assert "distributed backend: ssh" in out
        assert "steals:" in out and "heartbeats:" in out
        assert "repro_dist_cells_done_total" in out

    def test_obs_cli_campaign_dir_without_summary_errors(self, tmp_path,
                                                         capsys):
        from repro.experiments.obs_cli import main as obs_main
        rc = obs_main(["summary", "--campaign-dir", str(tmp_path / "empty")])
        assert rc == 2
        assert "no summary.json" in capsys.readouterr().err


class TestJobArray:
    def dist_kwargs(self, tmp_path, **over):
        kwargs = grid_kwargs(
            backend="job-array",
            dist_options=DistOptions(shards=2, lease_ttl_s=10.0),
            campaign_dir=tmp_path / "campaign",
            cache_dir=tmp_path / "cache")
        kwargs.update(over)
        return kwargs

    def test_spools_and_emits_scripts_without_executing(self, tmp_path):
        outcome = run_campaign(fakes.counting_run_one,
                               **self.dist_kwargs(tmp_path))
        assert fakes.CALLS == []                 # nothing ran locally
        dist = outcome.summary["dist"]
        assert dist["pending"] is True
        assert dist["shards"] == 2
        assert dist["cells_spooled"] == GRID_SIZE

        spool_dir = Path(dist["spool"])
        spool = WorkSpool(spool_dir)
        assert len(spool.cells()) == GRID_SIZE
        for script_name in ("submit_slurm.sh", "submit_pbs.sh"):
            script = spool_dir / script_name
            assert script.exists()
            assert os.access(script, os.X_OK)
            text = script.read_text()
            assert "-m repro.dist.worker" in text
            assert str(spool_dir.resolve()) in text
        assert "--array=0-1" in (spool_dir / "submit_slurm.sh").read_text()
        assert "#PBS -J 0-1" in (spool_dir / "submit_pbs.sh").read_text()

    def test_array_shards_then_resume_completes_campaign(self, tmp_path):
        first = run_campaign(fakes.counting_run_one,
                             **self.dist_kwargs(tmp_path))
        spool_dir = Path(first.summary["dist"]["spool"])
        # "The scheduler" runs each shard as its own worker process would.
        for shard in (0, 1):
            run_worker(spool_dir, worker_id=f"array-{shard}", shard=shard)
        assert WorkSpool(spool_dir).all_settled()

        baseline = run_campaign(fakes.counting_run_one, **grid_kwargs())
        fakes.CALLS.clear()
        second = run_campaign(fakes.counting_run_one,
                              **grid_kwargs(campaign_dir=tmp_path / "campaign",
                                            cache_dir=tmp_path / "cache",
                                            resume=True))
        assert fakes.CALLS == []                 # pure cache replay
        assert second.summary["executed"] == 0
        assert_identical(baseline.results, second.results)

    def test_wait_mode_folds_externally_settled_cells(self, tmp_path):
        import threading

        kwargs = self.dist_kwargs(
            tmp_path,
            dist_options=DistOptions(shards=2, lease_ttl_s=10.0,
                                     poll_s=0.05, wait=True))
        spool_dir = tmp_path / "campaign" / "spool"

        def external_array():
            # Wait for the coordinator to finish spooling, then drain.
            import time
            deadline = time.time() + 30.0
            while time.time() < deadline:
                if (spool_dir / WorkSpool.MANIFEST).is_file():
                    try:
                        run_worker(spool_dir, worker_id="array-0")
                        return
                    except (OSError, ValueError):
                        pass
                time.sleep(0.05)

        thread = threading.Thread(target=external_array, daemon=True)
        thread.start()
        outcome = run_campaign(fakes.counting_run_one, **kwargs)
        thread.join(timeout=30.0)
        assert outcome.summary["dist"]["cells_folded"] == GRID_SIZE
        assert outcome.summary["completed"] == GRID_SIZE


def test_fold_worker_stats_buckets_by_host():
    stats = fold_worker_stats([
        {"host": "a", "cells_done": 3, "steals": 1, "heartbeats": 7},
        {"host": "a", "cells_done": 2, "steals": 0, "heartbeats": 4},
        {"host": "b", "cells_done": 5, "steals": 2, "heartbeats": 9,
         "lost_steals": 1, "cells_failed": 1},
    ])
    assert stats["workers"] == 3
    assert stats["cells_done"] == 10
    assert stats["steals"] == 3
    assert stats["heartbeats"] == 20
    assert stats["lost_steals"] == 1
    assert stats["cells_failed"] == 1
    assert stats["hosts"]["a"] == {"workers": 2, "cells_done": 5,
                                   "steals": 1, "heartbeats": 11}
    assert stats["hosts"]["b"]["workers"] == 1
