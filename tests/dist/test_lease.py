"""The lease protocol: claim, renew, expire, steal — one owner, always.

Expiry is backdated deterministically with ``os.utime`` on the lease
file, never with real sleeps, so the TTL semantics are tested exactly.
"""

import json
import os
import time

from repro.dist.lease import LeaseDir, LeaseInfo


TTL = 30.0


def leases_for(tmp_path, worker: str) -> LeaseDir:
    return LeaseDir(tmp_path / "leases", worker, ttl_s=TTL)


def backdate(leases: LeaseDir, key: str, age_s: float) -> None:
    path = leases._path(key)
    stamp = time.time() - age_s
    os.utime(path, (stamp, stamp))


class TestClaim:
    def test_claim_free_key(self, tmp_path):
        lease = leases_for(tmp_path, "w1").claim("cell-a")
        assert lease is not None
        assert lease.info.worker == "w1"
        assert lease.info.epoch == 0
        assert not lease.stolen

    def test_claim_is_exclusive(self, tmp_path):
        a, b = leases_for(tmp_path, "w1"), leases_for(tmp_path, "w2")
        assert a.claim("cell-a") is not None
        assert b.claim("cell-a") is None

    def test_release_frees_the_key(self, tmp_path):
        a, b = leases_for(tmp_path, "w1"), leases_for(tmp_path, "w2")
        lease = a.claim("cell-a")
        lease.release()
        assert b.claim("cell-a") is not None

    def test_payload_is_fully_visible_on_claim(self, tmp_path):
        leases = leases_for(tmp_path, "w1")
        lease = leases.claim("cell-a")
        info = leases.info("cell-a")
        assert info == lease.info
        assert isinstance(info, LeaseInfo)

    def test_no_temp_files_left_behind(self, tmp_path):
        leases = leases_for(tmp_path, "w1")
        leases.claim("cell-a")
        assert leases.claim("cell-a") is None  # loser cleans its temp too
        leftovers = [p.name for p in leases.directory.iterdir()
                     if p.name.startswith(".claim-")]
        assert leftovers == []


class TestExpiry:
    def test_fresh_lease_is_live(self, tmp_path):
        leases = leases_for(tmp_path, "w1")
        leases.claim("cell-a")
        assert not leases.is_expired("cell-a")
        assert leases.live_keys() == {"cell-a"}

    def test_backdated_lease_expires(self, tmp_path):
        leases = leases_for(tmp_path, "w1")
        leases.claim("cell-a")
        backdate(leases, "cell-a", TTL + 1)
        assert leases.is_expired("cell-a")
        assert leases.live_keys() == set()

    def test_absent_lease_is_not_expired(self, tmp_path):
        assert not leases_for(tmp_path, "w1").is_expired("nothing")

    def test_renew_bumps_mtime_back_to_live(self, tmp_path):
        leases = leases_for(tmp_path, "w1")
        lease = leases.claim("cell-a")
        backdate(leases, "cell-a", TTL + 1)
        assert lease.renew()
        assert not leases.is_expired("cell-a")
        assert lease.heartbeats == 1
        assert leases.info("cell-a").heartbeats == 1


class TestSteal:
    def test_live_lease_cannot_be_stolen(self, tmp_path):
        a, b = leases_for(tmp_path, "w1"), leases_for(tmp_path, "w2")
        a.claim("cell-a")
        assert b.steal("cell-a") is None

    def test_expired_lease_is_stolen_with_bumped_epoch(self, tmp_path):
        a, b = leases_for(tmp_path, "w1"), leases_for(tmp_path, "w2")
        a.claim("cell-a")
        backdate(a, "cell-a", TTL + 1)
        stolen = b.steal("cell-a")
        assert stolen is not None
        assert stolen.stolen
        assert stolen.info.worker == "w2"
        assert stolen.info.epoch == 1

    def test_victim_renew_fails_and_flags_lost(self, tmp_path):
        a, b = leases_for(tmp_path, "w1"), leases_for(tmp_path, "w2")
        victim = a.claim("cell-a")
        backdate(a, "cell-a", TTL + 1)
        assert b.steal("cell-a") is not None
        assert not victim.renew()
        assert victim.lost

    def test_victim_release_leaves_thief_lease_intact(self, tmp_path):
        a, b = leases_for(tmp_path, "w1"), leases_for(tmp_path, "w2")
        victim = a.claim("cell-a")
        backdate(a, "cell-a", TTL + 1)
        assert b.steal("cell-a") is not None
        victim.release()
        assert b.info("cell-a").worker == "w2"

    def test_unparsable_payload_still_expires_and_steals(self, tmp_path):
        a, b = leases_for(tmp_path, "w1"), leases_for(tmp_path, "w2")
        a.claim("cell-a")
        a._path("cell-a").write_text("not json {")
        backdate(a, "cell-a", TTL + 1)
        stolen = b.steal("cell-a")
        assert stolen is not None
        assert stolen.info.epoch == 1  # old epoch unreadable -> starts at 1

    def test_lost_steal_race_is_counted(self, tmp_path, monkeypatch):
        a, b = leases_for(tmp_path, "w1"), leases_for(tmp_path, "w2")
        a.claim("cell-a")
        backdate(a, "cell-a", TTL + 1)

        def losing_rename(src, dst):
            raise FileNotFoundError(src)  # the other stealer renamed first

        monkeypatch.setattr(os, "rename", losing_rename)
        assert b.steal("cell-a") is None
        assert b.lost_steals == 1

    def test_third_worker_fresh_claims_between_rename_and_link(self, tmp_path):
        a, b, c = (leases_for(tmp_path, w) for w in ("w1", "w2", "w3"))
        a.claim("cell-a")
        backdate(a, "cell-a", TTL + 1)
        real_link = os.link
        claimed_by_c = {}

        def sniping_link(src, dst, **kwargs):
            # c grabs the key the instant b's rename empties the path.
            if "cell-a" in str(dst) and "armed" not in claimed_by_c:
                claimed_by_c["armed"] = True
                claimed_by_c["lease"] = c.claim("cell-a")
            return real_link(src, dst, **kwargs)

        os.link = sniping_link
        try:
            result = b.steal("cell-a")
        finally:
            os.link = real_link
        assert claimed_by_c["lease"] is not None
        assert result is None
        assert b.lost_steals == 1
        assert a.info("cell-a").worker == "w3"


class TestAcquire:
    def test_acquire_claims_when_free(self, tmp_path):
        lease = leases_for(tmp_path, "w1").acquire("cell-a")
        assert lease is not None and not lease.stolen

    def test_acquire_steals_when_expired(self, tmp_path):
        a, b = leases_for(tmp_path, "w1"), leases_for(tmp_path, "w2")
        a.claim("cell-a")
        backdate(a, "cell-a", TTL + 1)
        lease = b.acquire("cell-a")
        assert lease is not None and lease.stolen

    def test_acquire_refuses_live_foreign_lease(self, tmp_path):
        a, b = leases_for(tmp_path, "w1"), leases_for(tmp_path, "w2")
        a.claim("cell-a")
        assert b.acquire("cell-a") is None


def test_lease_info_roundtrip():
    info = LeaseInfo(key="k", worker="w", host="h", pid=7, epoch=2,
                     acquired_at=123.5, ttl_s=30.0, heartbeats=4)
    assert LeaseInfo.from_dict(json.loads(
        json.dumps(info.to_dict()))) == info
