"""Hosts-file parsing and the ``repro hosts check`` preflight.

The probe tests run against the ``local`` pseudo-host only — they spawn
this interpreter, never ssh.
"""

import json
import sys

import pytest

from repro.dist.hosts import (
    HostCheck,
    HostSpec,
    check_host,
    format_checks,
    main,
    parse_hosts_text,
    probe_command,
)


class TestParsing:
    def test_comments_and_blanks_ignored(self):
        hosts = parse_hosts_text("""
        # the cluster
        local workers=2

        node-a    # trailing comment
        """)
        assert [h.name for h in hosts] == ["local", "node-a"]
        assert hosts[0].workers == 2
        assert hosts[1].workers == 1

    def test_all_options(self):
        (host,) = parse_hosts_text(
            'node-a workers=8 python=/opt/py/bin/python3 '
            'ssh_opts="-p 2222 -i key"')
        assert host == HostSpec(name="node-a", workers=8,
                                python="/opt/py/bin/python3",
                                ssh_opts=("-p", "2222", "-i", "key"))

    def test_unknown_option_rejected(self):
        with pytest.raises(ValueError, match="unknown host option 'cpus'"):
            parse_hosts_text("node-a cpus=4")

    def test_bare_word_option_rejected(self):
        with pytest.raises(ValueError, match="expected key=value"):
            parse_hosts_text("node-a fast")

    def test_zero_workers_rejected(self):
        with pytest.raises(ValueError, match="workers must be >= 1"):
            parse_hosts_text("node-a workers=0")

    def test_empty_file_rejected(self):
        with pytest.raises(ValueError, match="no hosts defined"):
            parse_hosts_text("# nothing\n")

    def test_errors_carry_origin_and_line(self):
        with pytest.raises(ValueError, match=r"cluster\.txt:2"):
            parse_hosts_text("local\nnode-a workers=zero\n",
                             origin="cluster.txt")


class TestHostSpec:
    def test_local_pseudo_host(self):
        host = HostSpec("local")
        assert host.is_local
        assert host.interpreter == sys.executable

    def test_remote_defaults_to_python3(self):
        assert HostSpec("node-a").interpreter == "python3"
        assert not HostSpec("node-a").is_local

    def test_explicit_python_wins(self):
        assert HostSpec("local", python="/opt/py").interpreter == "/opt/py"


class TestProbeCommand:
    def test_local_runs_without_ssh(self):
        command = probe_command(HostSpec("local"), None)
        assert command[0] == sys.executable
        assert "ssh" not in command

    def test_remote_wraps_in_batchmode_ssh(self):
        command = probe_command(
            HostSpec("node-a", ssh_opts=("-p", "2222")), "/shared")
        assert command[:5] == ["ssh", "-o", "BatchMode=yes",
                               "-o", "ConnectTimeout=10"]
        assert "-p" in command and "2222" in command
        assert command[command.index("2222") + 1] == "node-a"


class TestCheckHost:
    def test_local_probe_passes(self, tmp_path):
        check = check_host(HostSpec("local"), shared_dir=str(tmp_path),
                           lease_ttl_s=30.0, timeout_s=60.0)
        assert check.ok, check.error
        assert check.python_version == tuple(sys.version_info[:3])
        assert check.writable is True
        assert check.rtt_s is not None and check.rtt_s > 0
        # Same clock, RTT/2-corrected: skew must be far under the budget.
        assert abs(check.skew_s) < 1.0
        assert check.warnings == []

    def test_unwritable_shared_dir_fails(self, tmp_path):
        check = check_host(HostSpec("local"),
                           shared_dir=str(tmp_path / "missing"),
                           timeout_s=60.0)
        assert not check.ok
        assert "not writable" in check.error

    def test_unreachable_interpreter_fails(self):
        check = check_host(HostSpec("local", python="/no/such/python"),
                           timeout_s=60.0)
        assert not check.ok
        assert "unreachable" in check.error

    def test_skew_warning_scales_with_ttl(self, monkeypatch):
        import subprocess
        import types

        import repro.dist.hosts as hosts_mod
        ticks = iter([1000.0, 1000.2])  # sent_at, received_at

        class FakeProc:
            returncode = 0
            stderr = ""
            stdout = json.dumps({"python": [3, 12, 0],
                                 "time": 1010.0,  # ~10s ahead of the probe
                                 "writable": None})

        monkeypatch.setattr(
            hosts_mod, "time",
            types.SimpleNamespace(time=lambda: next(ticks)))
        monkeypatch.setattr(
            hosts_mod, "subprocess",
            types.SimpleNamespace(run=lambda *a, **k: FakeProc(),
                                  TimeoutExpired=subprocess.TimeoutExpired))
        check = check_host(HostSpec("local"), lease_ttl_s=8.0)
        assert check.ok
        assert check.skew_s == pytest.approx(9.9, abs=0.01)
        assert any("clock skew" in w for w in check.warnings)

    def test_old_python_warns(self, monkeypatch):
        import subprocess
        import types

        import repro.dist.hosts as hosts_mod

        class FakeProc:
            returncode = 0
            stderr = ""
            stdout = json.dumps({"python": [3, 8, 2], "time": 0.0,
                                 "writable": None})

        monkeypatch.setattr(
            hosts_mod, "subprocess",
            types.SimpleNamespace(run=lambda *a, **k: FakeProc(),
                                  TimeoutExpired=subprocess.TimeoutExpired))
        check = check_host(HostSpec("node-a"))
        assert check.ok
        assert any("python 3.8.2" in w for w in check.warnings)


class TestCli:
    def test_check_local_exits_zero(self, tmp_path, capsys):
        hosts_file = tmp_path / "hosts.txt"
        hosts_file.write_text("local workers=2\n")
        rc = main(["check", "--hosts", str(hosts_file),
                   "--shared-dir", str(tmp_path), "--timeout", "60"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "local" in out and "ok" in out

    def test_check_json_output(self, tmp_path, capsys):
        hosts_file = tmp_path / "hosts.txt"
        hosts_file.write_text("local\n")
        rc = main(["check", "--hosts", str(hosts_file), "--json",
                   "--timeout", "60"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["host"] == "local"
        assert payload[0]["ok"] is True

    def test_failing_host_exits_one(self, tmp_path, capsys):
        hosts_file = tmp_path / "hosts.txt"
        hosts_file.write_text("local python=/no/such/python\n")
        rc = main(["check", "--hosts", str(hosts_file), "--timeout", "60"])
        assert rc == 1
        assert "FAIL" in capsys.readouterr().out

    def test_missing_hosts_file_exits_two(self, tmp_path, capsys):
        rc = main(["check", "--hosts", str(tmp_path / "nope.txt")])
        assert rc == 2
        assert "error:" in capsys.readouterr().err


def test_format_checks_renders_warnings():
    check = HostCheck(host=HostSpec("node-a", workers=4), ok=True,
                      python_version=(3, 12, 1), skew_s=0.002, rtt_s=0.05,
                      warnings=["clock skew +9.90s exceeds 2.0s"])
    text = format_checks([check])
    assert "node-a" in text
    assert "ok, WARN" in text
    assert "warning: clock skew" in text
