"""WorkSpool: sharded manifests, settlement markers, and the in-flight
key set that shields a running campaign from ``repro cache gc``."""

import json
import os
import time

import pytest

from repro.campaign.cache import ResultCache
from repro.dist.spool import CellSpec, WorkSpool, live_spool_keys
from tests.campaign import fakes
from tests.campaign.fakes import FakeConfig, make_summary


def grid_cells(n: int = 8) -> list[CellSpec]:
    return [CellSpec(key=f"{i:02d}{'ab' * 19}", protocol="alpha",
                     x=float(i), seed=i) for i in range(n)]


def make_spool(tmp_path, cells=None, **over) -> WorkSpool:
    kwargs = dict(
        payload={"run_one": fakes.counting_run_one,
                 "config": FakeConfig(), "extra": {}},
        campaign="fake", ttl_s=30.0,
        cache_dir=tmp_path / "cache")
    kwargs.update(over)
    return WorkSpool.create(tmp_path / "spool",
                            grid_cells() if cells is None else cells,
                            **kwargs)


class TestCreate:
    def test_manifest_and_cells_roundtrip(self, tmp_path):
        spool = make_spool(tmp_path)
        manifest = spool.manifest()
        assert manifest["campaign"] == "fake"
        assert manifest["total_cells"] == 8
        assert manifest["ttl_s"] == 30.0
        fresh = WorkSpool(spool.directory)
        assert [c.key for c in fresh.cells()] == [c.key for c in grid_cells()]

    def test_explicit_shard_count_partitions_cells(self, tmp_path):
        spool = make_spool(tmp_path, shards=3)
        assert spool.manifest()["shards"] == 3
        assert len(list(spool.cells_dir.glob("shard-*.json"))) == 3
        by_shard = {}
        for cell in WorkSpool(spool.directory).cells():
            by_shard.setdefault(cell.shard, []).append(cell)
        assert sorted(by_shard) == [0, 1, 2]
        assert sum(len(v) for v in by_shard.values()) == 8

    def test_payload_survives_pickling(self, tmp_path):
        spool = make_spool(tmp_path)
        payload = WorkSpool(spool.directory).load_payload()
        assert payload["run_one"] is fakes.counting_run_one
        assert payload["config"] == FakeConfig()

    def test_create_resets_previous_spool(self, tmp_path):
        spool = make_spool(tmp_path)
        spool.mark_done(grid_cells()[0].key, {"worker": "w"})
        spool = make_spool(tmp_path)
        assert spool.done_keys() == set()


class TestSettlement:
    def test_done_and_failed_markers(self, tmp_path):
        spool = make_spool(tmp_path)
        keys = [c.key for c in grid_cells()]
        spool.mark_done(keys[0], {"worker": "w1", "attempts": 1})
        spool.mark_failed(keys[1], {"worker": "w1", "error": "boom"})
        assert spool.is_settled(keys[0]) and spool.is_settled(keys[1])
        assert not spool.is_settled(keys[2])
        assert spool.read_done(keys[0])["attempts"] == 1
        assert spool.read_failed(keys[1])["error"] == "boom"
        assert spool.settled_keys() == {keys[0], keys[1]}
        assert spool.unsettled_keys() == set(keys[2:])
        assert not spool.all_settled()

    def test_all_settled(self, tmp_path):
        spool = make_spool(tmp_path)
        for cell in grid_cells():
            spool.mark_done(cell.key, {"worker": "w1"})
        assert spool.all_settled()

    def test_stop_flag(self, tmp_path):
        spool = make_spool(tmp_path)
        assert not spool.stop_requested()
        spool.request_stop()
        assert spool.stop_requested()

    def test_worker_stats_roundtrip(self, tmp_path):
        spool = make_spool(tmp_path)
        spool.write_worker_stats("w1", {"worker": "w1", "cells_done": 3})
        spool.write_worker_stats("w2", {"worker": "w2", "cells_done": 5})
        stats = spool.worker_stats()
        assert sorted(s["worker"] for s in stats) == ["w1", "w2"]


class TestInFlight:
    def test_live_lease_is_in_flight(self, tmp_path):
        spool = make_spool(tmp_path)
        key = grid_cells()[0].key
        spool.lease_dir("w1").claim(key)
        assert key in spool.in_flight_keys()

    def test_expired_lease_is_not_in_flight(self, tmp_path):
        spool = make_spool(tmp_path)
        key = grid_cells()[0].key
        leases = spool.lease_dir("w1")
        leases.claim(key)
        stamp = time.time() - 31.0
        os.utime(leases._path(key), (stamp, stamp))
        assert key not in spool.in_flight_keys()

    def test_settled_key_is_not_in_flight(self, tmp_path):
        spool = make_spool(tmp_path)
        key = grid_cells()[0].key
        spool.lease_dir("w1").claim(key)
        spool.mark_done(key, {"worker": "w1"})
        assert key not in spool.in_flight_keys()


class TestLiveSpoolKeys:
    def test_accepts_spool_or_campaign_dir(self, tmp_path):
        spool = make_spool(tmp_path)
        keys = {c.key for c in grid_cells()}
        assert live_spool_keys(spool.directory) == keys      # all unsettled
        assert live_spool_keys(tmp_path) == keys             # campaign dir

    def test_settled_campaign_needs_no_protection(self, tmp_path):
        spool = make_spool(tmp_path)
        for cell in grid_cells():
            spool.mark_done(cell.key, {"worker": "w1"})
        assert live_spool_keys(tmp_path) == set()

    def test_no_spool_yields_empty(self, tmp_path):
        assert live_spool_keys(tmp_path / "nowhere") == set()


class TestGcProtection:
    """Satellite: ``ResultCache.gc`` must not evict entries a running
    distributed campaign still references."""

    def put_all(self, cache: ResultCache, cells) -> None:
        for cell in cells:
            cache.put(cell.key,
                      make_summary(cell.protocol, cell.x, cell.seed,
                                   FakeConfig()))

    def test_in_flight_entries_survive_gc(self, tmp_path):
        cells = grid_cells()
        spool = make_spool(tmp_path, cells=cells)
        cache = ResultCache(tmp_path / "cache")
        self.put_all(cache, cells)
        # Half the campaign settles; the rest is live-leased or queued.
        for cell in cells[:4]:
            spool.mark_done(cell.key, {"worker": "w1"})
        spool.lease_dir("w1").claim(cells[4].key)

        protect = live_spool_keys(tmp_path)
        assert protect == {c.key for c in cells[4:]}
        report = cache.gc(0.0, protect=protect)   # evict *everything* old
        assert report["protected"] == 4
        assert report["removed"] == 4             # the settled half only
        for cell in cells[4:]:
            assert cache.get(cell.key) is not None
        for cell in cells[:4]:
            assert cell.key not in cache

    def test_gc_without_protection_still_prunes(self, tmp_path):
        cells = grid_cells()
        cache = ResultCache(tmp_path / "cache")
        self.put_all(cache, cells)
        report = cache.gc(0.0)
        assert report["removed"] == len(cells)
        assert report["protected"] == 0

    def test_cache_cli_gc_honours_campaign_dir(self, tmp_path, capsys):
        from repro.campaign.cache_cli import main as cache_main
        cells = grid_cells()
        make_spool(tmp_path, cells=cells)          # everything unsettled
        cache = ResultCache(tmp_path / "cache")
        self.put_all(cache, cells)
        rc = cache_main(["gc", "--older-than", "0",
                         "--cache-dir", str(tmp_path / "cache"),
                         "--campaign-dir", str(tmp_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "8 in-flight protected" in out
        assert ResultCache(tmp_path / "cache").entry_count() == len(cells)

    def test_cache_cli_gc_dry_run_reports_protection(self, tmp_path, capsys):
        from repro.campaign.cache_cli import main as cache_main
        cells = grid_cells()
        make_spool(tmp_path, cells=cells)
        cache = ResultCache(tmp_path / "cache")
        self.put_all(cache, cells)
        rc = cache_main(["gc", "--older-than", "0", "--dry-run",
                         "--cache-dir", str(tmp_path / "cache"),
                         "--campaign-dir", str(tmp_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "would remove 0 file(s)" in out
        assert "protecting 8 in-flight cells" in out


def test_atomic_markers_never_torn(tmp_path):
    """A marker write that dies mid-flight leaves nothing behind."""
    spool = make_spool(tmp_path)
    key = grid_cells()[0].key
    real_replace = os.replace

    def failing_replace(src, dst):
        raise OSError("disk full")

    os.replace = failing_replace
    try:
        with pytest.raises(OSError):
            spool.mark_done(key, {"worker": "w1"})
    finally:
        os.replace = real_replace
    assert not spool.is_settled(key)
    assert list(spool.done_dir.glob("*.tmp")) == []


def test_cellspec_roundtrip():
    cell = CellSpec(key="k" * 40, protocol="beta", x=2.5, seed=7, shard=3)
    assert CellSpec.from_dict(json.loads(json.dumps(cell.to_dict()))) == cell
