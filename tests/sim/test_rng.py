"""Tests for named random streams: reproducibility and isolation."""

import numpy as np

from repro.sim.rng import RandomStreams


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = RandomStreams(7).stream("mac").uniform(size=10)
        b = RandomStreams(7).stream("mac").uniform(size=10)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = RandomStreams(7).stream("mac").uniform(size=10)
        b = RandomStreams(8).stream("mac").uniform(size=10)
        assert not np.array_equal(a, b)

    def test_different_names_differ(self):
        streams = RandomStreams(7)
        a = streams.stream("mac[0]").uniform(size=10)
        b = streams.stream("mac[1]").uniform(size=10)
        assert not np.array_equal(a, b)

    def test_request_order_does_not_matter(self):
        s1 = RandomStreams(3)
        s1.stream("zebra")
        first_order = s1.stream("apple").uniform(size=5)

        s2 = RandomStreams(3)
        second_order = s2.stream("apple").uniform(size=5)
        assert np.array_equal(first_order, second_order)

    def test_stream_is_cached(self):
        streams = RandomStreams(1)
        assert streams.stream("x") is streams.stream("x")

    def test_seed_property(self):
        assert RandomStreams(123).seed == 123


class TestConvenience:
    def test_uniform_in_range(self):
        streams = RandomStreams(5)
        for _ in range(100):
            value = streams.uniform("jitter", 2.0, 3.0)
            assert 2.0 <= value < 3.0

    def test_uniform_draws_advance_the_stream(self):
        streams = RandomStreams(5)
        assert streams.uniform("a") != streams.uniform("a")
