"""Unit tests for the event primitives (slots, ordering, handle protocol)."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.events import EVENT_PRIORITY_DEFAULT, Event, EventHandle
from repro.sim.trace import TraceRecord


def make(time=1.0, priority=0, seq=0):
    return Event(time, priority, seq, lambda: None)


class TestEventOrdering:
    def test_ordered_by_time_first(self):
        assert make(time=1.0, seq=5) < make(time=2.0, seq=0)

    def test_priority_breaks_time_ties(self):
        assert make(priority=0, seq=5) < make(priority=1, seq=0)

    def test_sequence_breaks_remaining_ties(self):
        assert make(seq=0) < make(seq=1)

    def test_key_is_time_priority_seq(self):
        assert make(time=2.5, priority=3, seq=7).key == (2.5, 3, 7)

    def test_equal_keys_compare_equal(self):
        assert make() == make()
        assert make() <= make() and make() >= make()

    def test_comparison_with_other_types_is_refused(self):
        with pytest.raises(TypeError):
            make() < 3

    def test_sortable(self):
        events = [make(time=3.0, seq=2), make(time=1.0, seq=1), make(time=1.0, seq=0)]
        assert [e.seq for e in sorted(events)] == [0, 1, 2]


class TestSlots:
    def test_event_has_no_dict(self):
        with pytest.raises(AttributeError):
            make().bogus = 1
        assert not hasattr(Event, "__dict__") or "__dict__" not in Event.__slots__

    def test_trace_record_has_no_dict(self):
        record = TraceRecord(0.0, "src", "kind", {})
        assert not hasattr(record, "__dict__")
        assert TraceRecord.__slots__ == ("time", "source", "kind", "detail")
        # Still frozen: assignment fails (FrozenInstanceError on 3.12+,
        # TypeError on 3.10/3.11 — cpython gh-90562).
        with pytest.raises((AttributeError, TypeError)):
            record.time = 1.0

    def test_event_handle_is_slotted(self):
        # EventHandle aliases Event: one slotted object per scheduled event.
        assert EventHandle is Event

    def test_fresh_sequence_export_dropped(self):
        with pytest.raises(ImportError):
            from repro.sim.events import fresh_sequence  # noqa: F401


class TestHandleProtocol:
    def test_fire_invokes_callback_with_args(self):
        seen = []
        Event(0.0, 0, 0, seen.append, (42,)).fire()
        assert seen == [42]

    def test_bare_event_cancel_without_scheduler(self):
        event = make()
        assert event.cancel() is True
        assert event.cancel() is False
        assert event.cancelled

    def test_scheduler_handle_exposes_time_and_default_priority(self):
        sim = Simulator()
        handle = sim.schedule(2.0, lambda: None)
        assert handle.time == 2.0
        assert handle.priority == EVENT_PRIORITY_DEFAULT
        assert not handle.cancelled
