"""Tests for the component/port model and tracing."""

import pytest

from repro.sim.components import Component, Outport, PortNotConnected, SimContext
from repro.sim.trace import NullTracer, Tracer


class TestOutport:
    def test_unconnected_port_raises(self):
        port = Outport("p")
        with pytest.raises(PortNotConnected):
            port("data")

    def test_single_handler(self):
        port = Outport("p")
        got = []
        port.connect(got.append)
        port("x")
        assert got == ["x"]

    def test_fan_out_in_connection_order(self):
        port = Outport("p")
        order = []
        port.connect(lambda v: order.append(("first", v)))
        port.connect(lambda v: order.append(("second", v)))
        port(7)
        assert order == [("first", 7), ("second", 7)]

    def test_connected_flag(self):
        port = Outport("p")
        assert not port.connected
        port.connect(lambda: None)
        assert port.connected


class TestComponent:
    def test_schedule_uses_context_clock(self, ctx):
        comp = Component(ctx, "c")
        fired = []
        comp.schedule(2.0, fired.append, "x")
        ctx.simulator.run()
        assert fired == ["x"]
        assert comp.now == 2.0

    def test_trace_records_time_and_source(self, ctx):
        comp = Component(ctx, "radio[3]")
        comp.trace("event", detail=1)
        record = ctx.tracer.records[0]
        assert record.source == "radio[3]"
        assert record.kind == "event"
        assert record.detail == {"detail": 1}

    def test_rng_streams_are_per_component(self, ctx):
        a = Component(ctx, "a").rng()
        b = Component(ctx, "b").rng()
        assert a.uniform() != b.uniform() or a is not b

    def test_rng_suffix_gives_distinct_stream(self, ctx):
        comp = Component(ctx, "c")
        assert comp.rng("x") is not comp.rng("y")

    def test_outport_name_includes_component(self, ctx):
        comp = Component(ctx, "mac[2]")
        assert comp.outport("to_net").name == "mac[2].to_net"


class TestTracer:
    def test_null_tracer_drops_everything(self):
        tracer = NullTracer()
        tracer.emit(1.0, "s", "k", a=1)
        assert len(tracer) == 0

    def test_kind_filter(self):
        tracer = Tracer(kinds={"keep"})
        tracer.emit(0.0, "s", "keep")
        tracer.emit(0.0, "s", "drop")
        assert [r.kind for r in tracer.records] == ["keep"]

    def test_of_kind_iterates_matching(self):
        tracer = Tracer()
        tracer.emit(0.0, "s", "a")
        tracer.emit(0.0, "s", "b")
        tracer.emit(0.0, "s", "a")
        assert len(list(tracer.of_kind("a"))) == 2

    def test_sink_callback(self):
        seen = []
        tracer = Tracer(sink=seen.append)
        tracer.emit(0.0, "s", "k")
        assert len(seen) == 1

    def test_clear(self):
        tracer = Tracer()
        tracer.emit(0.0, "s", "k")
        tracer.clear()
        assert len(tracer) == 0

    def test_disabled_tracer_skips(self):
        tracer = Tracer()
        tracer.enabled = False
        tracer.emit(0.0, "s", "k")
        assert len(tracer) == 0
