"""Unit tests for the discrete-event kernel."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import SimulationError, Simulator


class TestScheduling:
    def test_clock_starts_at_zero(self, sim):
        assert sim.now == 0.0

    def test_custom_start_time(self):
        assert Simulator(start_time=5.0).now == 5.0

    def test_events_fire_in_time_order(self, sim):
        fired = []
        sim.schedule(3.0, fired.append, "c")
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(2.0, fired.append, "b")
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_equal_times_fire_in_schedule_order(self, sim):
        fired = []
        for tag in range(10):
            sim.schedule(1.0, fired.append, tag)
        sim.run()
        assert fired == list(range(10))

    def test_priority_breaks_ties_before_sequence(self, sim):
        fired = []
        sim.schedule(1.0, fired.append, "late", priority=1)
        sim.schedule(1.0, fired.append, "early", priority=0)
        sim.run()
        assert fired == ["early", "late"]

    def test_clock_advances_to_event_time(self, sim):
        seen = []
        sim.schedule(2.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [2.5]

    def test_zero_delay_allowed(self, sim):
        fired = []
        sim.schedule(0.0, fired.append, 1)
        sim.run()
        assert fired == [1]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(-0.1, lambda: None)

    def test_schedule_at_absolute_time(self, sim):
        fired = []
        sim.schedule_at(4.0, fired.append, "x")
        sim.run()
        assert fired == ["x"] and sim.now == 4.0

    def test_schedule_at_past_rejected(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(0.5, lambda: None)

    def test_events_scheduled_during_run_fire(self, sim):
        fired = []

        def chain(depth):
            fired.append(depth)
            if depth < 3:
                sim.schedule(1.0, chain, depth + 1)

        sim.schedule(0.0, chain, 0)
        sim.run()
        assert fired == [0, 1, 2, 3]
        assert sim.now == 3.0


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, sim):
        fired = []
        handle = sim.schedule(1.0, fired.append, "x")
        assert handle.cancel()
        sim.run()
        assert fired == []

    def test_cancel_is_idempotent(self, sim):
        handle = sim.schedule(1.0, lambda: None)
        assert handle.cancel() is True
        assert handle.cancel() is False

    def test_cancel_after_fire_is_noop(self, sim):
        fired = []
        handle = sim.schedule(1.0, fired.append, 1)
        sim.run()
        handle.cancel()
        assert fired == [1]

    def test_cancelled_events_do_not_advance_clock(self, sim):
        sim.schedule(10.0, lambda: None).cancel()
        sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.now == 1.0

    def test_handle_reports_time_and_state(self, sim):
        handle = sim.schedule(2.0, lambda: None)
        assert handle.time == 2.0
        assert not handle.cancelled
        handle.cancel()
        assert handle.cancelled


class TestRunControl:
    def test_run_until_stops_before_later_events(self, sim):
        fired = []
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(5.0, fired.append, "b")
        sim.run(until=2.0)
        assert fired == ["a"]
        assert sim.now == 2.0  # clock tiled exactly to the boundary
        sim.run(until=10.0)
        assert fired == ["a", "b"]

    def test_run_until_fires_events_at_boundary(self, sim):
        fired = []
        sim.schedule(2.0, fired.append, "edge")
        sim.run(until=2.0)
        assert fired == ["edge"]

    def test_max_events(self, sim):
        fired = []
        for i in range(5):
            sim.schedule(float(i + 1), fired.append, i)
        sim.run(max_events=2)
        assert fired == [0, 1]

    def test_step_returns_false_when_drained(self, sim):
        assert sim.step() is False
        sim.schedule(1.0, lambda: None)
        assert sim.step() is True
        assert sim.step() is False

    def test_drain_discards_pending(self, sim):
        fired = []
        sim.schedule(1.0, fired.append, 1)
        sim.drain()
        sim.run()
        assert fired == []

    def test_not_reentrant(self, sim):
        def reenter():
            sim.run()

        sim.schedule(1.0, reenter)
        with pytest.raises(SimulationError):
            sim.run()

    def test_events_processed_counts_fired_only(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None).cancel()
        sim.run()
        assert sim.events_processed == 1


class TestScheduleMany:
    def test_bulk_events_fire_in_order(self, sim):
        fired = []
        sim.schedule_many([(2.0, fired.append, ("b",)),
                           (1.0, fired.append, ("a",)),
                           (3.0, fired.append, ("c",))])
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_interleaves_with_schedule_by_sequence(self, sim):
        fired = []
        sim.schedule(1.0, fired.append, "first")
        sim.schedule_many([(1.0, fired.append, ("second",)),
                           (1.0, fired.append, ("third",))])
        sim.schedule(1.0, fired.append, "fourth")
        sim.run()
        assert fired == ["first", "second", "third", "fourth"]

    def test_counts_processed_and_pending(self, sim):
        sim.schedule_many([(1.0, lambda: None, ())] * 5)
        assert sim.pending == 5
        sim.run()
        assert sim.events_processed == 5


class TestHeapCompaction:
    def test_storm_compacts_pending(self, sim):
        # Arm far more than the compaction floor, cancel almost all of them:
        # the cancelled entries must be evicted eagerly, not at pop time.
        handles = [sim.schedule(1.0 + i * 1e-6, lambda: None) for i in range(4000)]
        for handle in handles[:-10]:
            handle.cancel()
        assert sim.pending < 1000
        sim.run()
        assert sim.events_processed == 10

    def test_small_heaps_are_left_alone(self, sim):
        handles = [sim.schedule(1.0, lambda: None) for _ in range(100)]
        for handle in handles:
            handle.cancel()
        assert sim.pending == 100  # below the compaction floor

    def test_ordering_identical_with_interleaved_cancels(self):
        # The same workload with and without compaction-triggering volume
        # must fire survivors in the same relative order.
        def run(n):
            sim = Simulator()
            fired = []
            handles = [sim.schedule(1.0 + (i % 7) * 1e-3, fired.append, i)
                       for i in range(n)]
            for i, handle in enumerate(handles):
                if i % 5:
                    handle.cancel()
            sim.run()
            return fired

        big = run(5000)  # triggers compaction
        assert big == sorted(range(0, 5000, 5), key=lambda i: ((i % 7), i))

    def test_cancel_after_fire_never_removes_live_events(self, sim):
        fired = []
        done = []
        for i in range(2000):
            done.append(sim.schedule(0.5 + i * 1e-6, fired.append, i))
        sim.run(until=0.6)
        live = [sim.schedule(1.0 + i * 1e-6, fired.append, 10_000 + i)
                for i in range(20)]
        for handle in done:  # no-op cancels on fired events
            handle.cancel()
        sim.run()
        assert len(fired) == 2000 + 20
        assert not any(h.cancelled for h in live)


class TestProperties:
    @given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_firing_order_is_nondecreasing(self, delays):
        sim = Simulator()
        times = []
        for d in delays:
            sim.schedule(d, lambda: times.append(sim.now))
        sim.run()
        assert times == sorted(times)
        assert len(times) == len(delays)

    @given(
        st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=100),
        st.sets(st.integers(min_value=0, max_value=99)),
    )
    @settings(max_examples=50, deadline=None)
    def test_cancelled_subset_never_fires(self, delays, cancel_indices):
        sim = Simulator()
        fired = []
        handles = [sim.schedule(d, fired.append, i) for i, d in enumerate(delays)]
        cancelled = {i for i in cancel_indices if i < len(handles)}
        for i in cancelled:
            handles[i].cancel()
        sim.run()
        assert set(fired) == set(range(len(delays))) - cancelled
