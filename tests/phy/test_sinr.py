"""Tests for the SINR reception model."""

import numpy as np
import pytest

from repro.mac.frame import Frame
from repro.phy.channel import Channel
from repro.phy.propagation import FreeSpace, range_to_threshold_dbm
from repro.phy.radio import RadioConfig, Transceiver
from repro.sim.components import SimContext


def frame(src=0, seq=0):
    return Frame(src=src, dst=None, seq=seq, payload=None, size_bytes=100)


def build(ctx, positions, sinr_threshold_db=10.0):
    positions = np.asarray(positions, dtype=float)
    model = FreeSpace()
    tx_power = 15.0
    rx_thr = range_to_threshold_dbm(model, tx_power, 250.0)
    config = RadioConfig(tx_power_dbm=tx_power, rx_threshold_dbm=rx_thr,
                         sinr_model=True, sinr_threshold_db=sinr_threshold_db)
    channel = Channel(ctx, positions, model, tx_power,
                      reach_threshold_dbm=config.cs_threshold_dbm)
    radios = [Transceiver(ctx, i, channel, config)
              for i in range(len(positions))]
    return channel, radios


class TestSinrReception:
    def test_clean_frame_received(self, ctx):
        channel, radios = build(ctx, [[0.0, 0.0], [100.0, 0.0]])
        got = []
        radios[1].to_mac.connect(lambda f, i: got.append(f))
        radios[0].transmit(frame(), duration=0.001)
        ctx.simulator.run()
        assert len(got) == 1

    def test_strong_frame_survives_weak_interferer(self, ctx):
        # Receiver at 50 m from the sender, interferer at 240 m: the wanted
        # signal is ~27 dB stronger — with SINR it survives where the simple
        # collision model would have destroyed it.
        positions = [[0.0, 0.0], [50.0, 0.0], [290.0, 0.0]]
        channel, radios = build(ctx, positions)
        got = []
        radios[1].to_mac.connect(lambda f, i: got.append(f.src))
        radios[0].transmit(frame(src=0), duration=0.001)
        radios[2].transmit(frame(src=2), duration=0.001)
        ctx.simulator.run()
        assert got == [0]

    def test_comparable_frames_destroy_each_other(self, ctx):
        positions = [[0.0, 0.0], [100.0, 0.0], [200.0, 0.0]]
        channel, radios = build(ctx, positions)
        got = []
        radios[1].to_mac.connect(lambda f, i: got.append(f.src))
        radios[0].transmit(frame(src=0), duration=0.001)
        radios[2].transmit(frame(src=2), duration=0.001)
        ctx.simulator.run()
        assert got == []  # ~0 dB SINR both ways

    def test_late_strong_interferer_corrupts_locked_frame(self, ctx):
        # The wanted frame locks first; a much stronger frame starts
        # mid-reception and drowns it.
        positions = [[0.0, 0.0], [200.0, 0.0], [210.0, 0.0]]
        channel, radios = build(ctx, positions)
        got = []
        radios[1].to_mac.connect(lambda f, i: got.append(f.src))
        radios[0].transmit(frame(src=0), duration=0.004)
        ctx.simulator.schedule(0.002, radios[2].transmit, frame(src=2), 0.001)
        ctx.simulator.run()
        # The near interferer (10 m) obliterates the 200 m signal; and the
        # interferer's own frame started mid-collision so it is not clean
        # either under lock rules — nothing is delivered.
        assert 0 not in got

    def test_sinr_capture_switches_to_stronger_frame(self, ctx):
        # Weak frame locks; a far stronger one arrives and captures the
        # receiver, getting delivered intact.
        positions = [[0.0, 0.0], [200.0, 0.0], [190.0, 0.0]]
        channel, radios = build(ctx, positions)
        got = []
        radios[1].to_mac.connect(lambda f, i: got.append(f.src))
        radios[0].transmit(frame(src=0), duration=0.004)
        # node 2 sits 10 m from the receiver: its frame is ~26 dB stronger.
        ctx.simulator.schedule(0.001, radios[2].transmit, frame(src=2), 0.001)
        ctx.simulator.run()
        assert got == [2]

    def test_sub_threshold_noise_accumulates(self, ctx):
        # Several sub-decode-threshold interferers together can still drown a
        # marginal signal: the SINR model sums them.
        positions = [[0.0, 0.0], [245.0, 0.0],
                     [245.0 + 330.0, 0.0], [245.0, 330.0], [245.0, -330.0]]
        channel, radios = build(ctx, positions, sinr_threshold_db=10.0)
        got = []
        radios[1].to_mac.connect(lambda f, i: got.append(f.src))
        radios[0].transmit(frame(src=0), duration=0.004)
        for i in (2, 3, 4):
            ctx.simulator.schedule(0.0005, radios[i].transmit, frame(src=i), 0.004)
        ctx.simulator.run()
        assert got == []

    def test_noise_floor_limits_range(self, ctx):
        # With a very high noise floor, even a clean frame fails the SINR bar.
        positions = np.asarray([[0.0, 0.0], [240.0, 0.0]])
        model = FreeSpace()
        rx_thr = range_to_threshold_dbm(model, 15.0, 250.0)
        config = RadioConfig(tx_power_dbm=15.0, rx_threshold_dbm=rx_thr,
                             sinr_model=True, sinr_threshold_db=10.0,
                             noise_floor_dbm=rx_thr)  # noise at signal level
        channel = Channel(ctx, positions, model, 15.0, config.cs_threshold_dbm)
        radios = [Transceiver(ctx, i, channel, config) for i in range(2)]
        got = []
        radios[1].to_mac.connect(lambda f, i: got.append(f))
        radios[0].transmit(frame(), duration=0.001)
        ctx.simulator.run()
        assert got == []
