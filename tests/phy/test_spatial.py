"""Unit tests for the uniform-grid spatial index."""

import numpy as np
import pytest

from repro.phy.spatial import UniformGrid, neighbor_pairs
from repro.topology.placement import adjacency


def brute_pairs(positions, range_m):
    dist = np.sqrt(((positions[:, None] - positions[None, :]) ** 2).sum(-1))
    srcs, dsts = np.nonzero(dist <= range_m)
    keep = srcs != dsts
    return set(zip(srcs[keep].tolist(), dsts[keep].tolist()))


class TestUniformGrid:
    def test_rejects_nonpositive_cell(self):
        with pytest.raises(ValueError, match="cell_size_m"):
            UniformGrid(np.zeros((3, 2)), 0.0)

    def test_candidates_superset_of_pairs_within_cell_radius(self):
        rng = np.random.default_rng(3)
        positions = rng.uniform(0, 900, size=(120, 2))
        cell = 150.0
        grid = UniformGrid(positions, cell)
        srcs, dsts = grid.candidates(np.arange(len(positions)))
        got = set(zip(srcs.tolist(), dsts.tolist()))
        # Every true pair within the cell size must be a candidate.
        assert brute_pairs(positions, cell) <= got
        # No self pairs, no duplicates.
        assert all(s != d for s, d in got)
        assert len(got) == len(srcs)

    def test_candidates_subset_of_sources(self):
        rng = np.random.default_rng(4)
        positions = rng.uniform(0, 500, size=(60, 2))
        grid = UniformGrid(positions, 100.0)
        sources = np.array([3, 17, 42])
        srcs, _dsts = grid.candidates(sources)
        assert set(srcs.tolist()) <= set(sources.tolist())

    def test_wider_reach_cells_covers_larger_radius(self):
        rng = np.random.default_rng(5)
        positions = rng.uniform(0, 600, size=(80, 2))
        grid = UniformGrid(positions, 100.0)
        srcs, dsts = grid.candidates(np.arange(80), reach_cells=3)
        got = set(zip(srcs.tolist(), dsts.tolist()))
        assert brute_pairs(positions, 300.0) <= got

    def test_rebin_follows_positions(self):
        positions = np.array([[0.0, 0.0], [10.0, 0.0], [500.0, 500.0]])
        grid = UniformGrid(positions, 50.0)
        srcs, dsts = grid.candidates(np.array([0]))
        assert set(dsts.tolist()) == {1}
        positions[2] = [20.0, 0.0]
        grid.rebin(positions)
        _, dsts = grid.candidates(np.array([0]))
        assert set(dsts.tolist()) == {1, 2}

    def test_negative_coordinates_are_normalized(self):
        positions = np.array([[-120.0, -80.0], [-100.0, -80.0], [300.0, 200.0]])
        grid = UniformGrid(positions, 50.0)
        _, dsts = grid.candidates(np.array([0]))
        assert 1 in dsts.tolist()

    def test_neighborhood_members_includes_ids_and_neighbors(self):
        positions = np.array([[0.0, 0.0], [10.0, 0.0], [900.0, 900.0]])
        grid = UniformGrid(positions, 50.0)
        members = grid.neighborhood_members(np.array([0]))
        assert 0 in members and 1 in members
        assert 2 not in members

    def test_empty_grid_and_empty_sources(self):
        grid = UniformGrid(np.empty((0, 2)), 10.0)
        srcs, dsts = grid.candidates(np.empty(0, dtype=np.int64))
        assert len(srcs) == 0 and len(dsts) == 0
        grid2 = UniformGrid(np.zeros((4, 2)), 10.0)
        srcs, dsts = grid2.candidates(np.empty(0, dtype=np.int64))
        assert len(srcs) == 0

    def test_huge_reach_cells_is_clamped(self):
        positions = np.random.default_rng(0).uniform(0, 100, size=(10, 2))
        grid = UniformGrid(positions, 10.0)
        srcs, dsts = grid.candidates(np.arange(10), reach_cells=10_000)
        got = set(zip(srcs.tolist(), dsts.tolist()))
        assert len(got) == 10 * 9  # all ordered pairs


class TestNeighborPairs:
    def test_matches_dense_adjacency(self):
        rng = np.random.default_rng(11)
        positions = rng.uniform(0, 800, size=(150, 2))
        range_m = 170.0
        srcs, dsts = neighbor_pairs(positions, range_m)
        got = set(zip(srcs.tolist(), dsts.tolist()))
        adj = adjacency(positions, range_m)
        expected = set(zip(*(a.tolist() for a in np.nonzero(adj))))
        assert got == expected

    def test_empty_positions(self):
        srcs, dsts = neighbor_pairs(np.empty((0, 2)), 100.0)
        assert len(srcs) == 0 and len(dsts) == 0
