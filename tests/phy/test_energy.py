"""Tests for energy accounting."""

import pytest

from repro.phy.energy import EnergyMeter, EnergyModel
from repro.phy.radio import RadioState


class TestEnergyModel:
    def test_draws_ordered_sensibly(self):
        model = EnergyModel()
        assert model.draw_w(RadioState.TX) > model.draw_w(RadioState.RX)
        assert model.draw_w(RadioState.RX) >= model.draw_w(RadioState.IDLE)
        assert model.draw_w(RadioState.IDLE) > model.draw_w(RadioState.SLEEP)
        assert model.draw_w(RadioState.OFF) == 0.0


class TestEnergyMeter:
    def test_integrates_idle_time(self):
        meter = EnergyMeter(model=EnergyModel(idle_w=1.0))
        assert meter.finalize(10.0) == pytest.approx(10.0)

    def test_state_transitions_accumulate_correctly(self):
        model = EnergyModel(tx_w=2.0, idle_w=1.0, sleep_w=0.0)
        meter = EnergyMeter(model=model)
        meter.on_state_change(5.0, RadioState.IDLE, RadioState.TX)   # 5 s idle
        meter.on_state_change(7.0, RadioState.TX, RadioState.SLEEP)  # 2 s tx
        total = meter.finalize(10.0)                                  # 3 s sleep
        assert total == pytest.approx(5 * 1.0 + 2 * 2.0 + 3 * 0.0)

    def test_time_by_state_tracked(self):
        meter = EnergyMeter()
        meter.on_state_change(4.0, RadioState.IDLE, RadioState.TX)
        meter.on_state_change(6.0, RadioState.TX, RadioState.IDLE)
        meter.finalize(6.0)
        assert meter.time_by_state[RadioState.IDLE] == pytest.approx(4.0)
        assert meter.time_by_state[RadioState.TX] == pytest.approx(2.0)

    def test_sleeping_node_uses_orders_of_magnitude_less(self):
        awake = EnergyMeter()
        awake.finalize(100.0)
        asleep = EnergyMeter()
        asleep.on_state_change(0.0, RadioState.IDLE, RadioState.SLEEP)
        asleep.finalize(100.0)
        assert asleep.consumed_j < awake.consumed_j / 100
