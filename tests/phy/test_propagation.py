"""Tests for the propagation models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.phy.propagation import (
    FreeSpace,
    LogDistance,
    RayleighFading,
    TwoRayGround,
    range_to_threshold_dbm,
)

DISTANCES = st.floats(min_value=1.0, max_value=10_000.0)


class TestFreeSpace:
    def test_loss_increases_with_distance(self):
        model = FreeSpace()
        assert model.path_loss_db(200.0) > model.path_loss_db(100.0)

    def test_inverse_square_law_in_db(self):
        model = FreeSpace()
        # Doubling the distance adds 20·log10(2) ≈ 6.02 dB.
        delta = model.path_loss_db(200.0) - model.path_loss_db(100.0)
        assert delta == pytest.approx(20.0 * np.log10(2.0))

    def test_rx_power_is_tx_minus_loss(self):
        model = FreeSpace()
        assert model.rx_power_dbm(15.0, 100.0) == pytest.approx(
            15.0 - model.path_loss_db(100.0))

    def test_higher_frequency_more_loss(self):
        assert FreeSpace(2.4e9).path_loss_db(100.0) > FreeSpace(914e6).path_loss_db(100.0)

    def test_vectorized_matches_scalar(self):
        model = FreeSpace()
        d = np.array([10.0, 100.0, 1000.0])
        vec = model.path_loss_db(d)
        for i, di in enumerate(d):
            assert vec[i] == pytest.approx(model.path_loss_db(float(di)))

    def test_sub_meter_distances_clamped(self):
        model = FreeSpace()
        assert model.path_loss_db(0.0) == model.path_loss_db(1.0)

    @given(DISTANCES, DISTANCES)
    @settings(max_examples=100, deadline=None)
    def test_monotone_everywhere(self, d1, d2):
        model = FreeSpace()
        if d1 < d2:
            assert model.path_loss_db(d1) <= model.path_loss_db(d2)


class TestTwoRayGround:
    def test_matches_free_space_below_crossover(self):
        model = TwoRayGround()
        d = model.crossover_m * 0.5
        assert model.path_loss_db(d) == pytest.approx(
            FreeSpace(model.frequency_hz).path_loss_db(d))

    def test_fourth_power_beyond_crossover(self):
        model = TwoRayGround()
        d = model.crossover_m * 2.0
        delta = model.path_loss_db(2 * d) - model.path_loss_db(d)
        assert delta == pytest.approx(40.0 * np.log10(2.0))

    def test_taller_antennas_reduce_far_loss(self):
        short = TwoRayGround(tx_height_m=1.0, rx_height_m=1.0)
        tall = TwoRayGround(tx_height_m=3.0, rx_height_m=3.0)
        d = max(short.crossover_m, tall.crossover_m) * 2
        assert tall.path_loss_db(d) < short.path_loss_db(d)

    @given(DISTANCES, DISTANCES)
    @settings(max_examples=100, deadline=None)
    def test_monotone_everywhere(self, d1, d2):
        model = TwoRayGround()
        if d1 < d2:
            assert model.path_loss_db(d1) <= model.path_loss_db(d2) + 1e-9


class TestLogDistance:
    def test_exponent_controls_slope(self):
        gentle = LogDistance(exponent=2.0)
        steep = LogDistance(exponent=4.0)
        assert steep.path_loss_db(1000.0) > gentle.path_loss_db(1000.0)

    def test_reduces_to_free_space_at_exponent_two(self):
        model = LogDistance(exponent=2.0)
        free = FreeSpace()
        assert model.path_loss_db(500.0) == pytest.approx(free.path_loss_db(500.0))


class TestRayleigh:
    def test_mean_loss_matches_underlying_model(self):
        model = RayleighFading()
        assert model.path_loss_db(300.0) == FreeSpace().path_loss_db(300.0)

    def test_is_stochastic(self):
        assert RayleighFading().stochastic
        assert not FreeSpace().stochastic

    def test_fades_have_unit_mean_power(self):
        rng = np.random.default_rng(0)
        fades_db = RayleighFading().sample_fade_db(rng, 20_000)
        linear = 10 ** (fades_db / 10.0)
        assert np.mean(linear) == pytest.approx(1.0, rel=0.05)

    def test_fades_are_finite(self):
        rng = np.random.default_rng(0)
        assert np.isfinite(RayleighFading().sample_fade_db(rng, 1000)).all()


class TestRangeThreshold:
    def test_roundtrip(self):
        model = FreeSpace()
        threshold = range_to_threshold_dbm(model, 15.0, 250.0)
        # At exactly the range, received power equals the threshold.
        assert model.rx_power_dbm(15.0, 250.0) == pytest.approx(threshold)
        # Just inside is above, just outside is below.
        assert model.rx_power_dbm(15.0, 249.0) > threshold
        assert model.rx_power_dbm(15.0, 251.0) < threshold

    @given(st.floats(min_value=50.0, max_value=2000.0))
    @settings(max_examples=50, deadline=None)
    def test_any_range_is_realizable(self, range_m):
        threshold = range_to_threshold_dbm(FreeSpace(), 15.0, range_m)
        assert np.isfinite(threshold)
