"""Tests for the shared-medium channel."""

import numpy as np
import pytest

from repro.mac.frame import Frame
from repro.phy.channel import Channel
from repro.phy.propagation import FreeSpace, RayleighFading, range_to_threshold_dbm
from repro.phy.radio import RadioConfig, Transceiver
from tests.conftest import line_positions, make_phy_stack


def frame(src=0, seq=0):
    return Frame(src=src, dst=None, seq=seq, payload=None, size_bytes=64)


class TestLinkBudget:
    def test_distance_matrix_symmetric(self, ctx):
        channel, _, _ = make_phy_stack(ctx, line_positions(4))
        assert np.allclose(channel.distance_m, channel.distance_m.T)

    def test_positions_shape_validated(self, ctx):
        with pytest.raises(ValueError):
            Channel(ctx, np.zeros((3, 4)), FreeSpace(), 15.0, -70.0)
        with pytest.raises(ValueError):
            Channel(ctx, np.zeros(6), FreeSpace(), 15.0, -70.0)

    def test_positions_3d_accepted(self, ctx):
        channel = Channel(ctx, np.zeros((3, 3)), FreeSpace(), 15.0, -70.0)
        assert channel.dim == 3

    def test_reach_excludes_self(self, ctx):
        channel, _, _ = make_phy_stack(ctx, line_positions(3, spacing=100.0))
        for i in range(3):
            assert i not in channel.reach[i]

    def test_reach_respects_threshold(self, ctx):
        # 200 m spacing, 250 m rx range, ~354 m CS reach: node 0 senses
        # nodes 1 (200 m) but not node 3 (600 m).
        channel, _, _ = make_phy_stack(ctx, line_positions(4, spacing=200.0))
        assert 1 in channel.reach[0]
        assert 3 not in channel.reach[0]

    def test_neighbors_with_explicit_threshold(self, ctx):
        channel, radios, config = make_phy_stack(ctx, line_positions(3, spacing=200.0))
        decodable = channel.neighbors(0, config.rx_threshold_dbm)
        assert list(decodable) == [1]  # 400 m is out of decode range


class TestTransmission:
    def test_tx_count_increments(self, ctx):
        channel, radios, _ = make_phy_stack(ctx, line_positions(2, spacing=100.0))
        radios[0].transmit(frame(), duration=0.001)
        ctx.simulator.run()
        assert channel.tx_count == 1
        assert channel.tx_count_by_kind["raw"] == 1

    def test_all_reachable_nodes_get_the_frame(self, ctx):
        channel, radios, _ = make_phy_stack(ctx, line_positions(4, spacing=100.0))
        got = []
        for r in radios[1:]:
            r.to_mac.connect(lambda f, i, rid=r.node_id: got.append(rid))
        radios[0].transmit(frame(), duration=0.001)
        ctx.simulator.run()
        assert sorted(got) == [1, 2]  # node 3 at 300 m > 250 m range

    def test_propagation_delay_orders_receptions(self, ctx):
        channel, radios, _ = make_phy_stack(ctx, line_positions(3, spacing=100.0))
        arrival = {}
        radios[1].to_mac.connect(lambda f, i: arrival.__setitem__(1, ctx.now))
        radios[2].to_mac.connect(lambda f, i: arrival.__setitem__(2, ctx.now))
        radios[0].transmit(frame(), duration=0.001)
        ctx.simulator.run()
        assert arrival[1] < arrival[2]

    def test_duplicate_registration_rejected(self, ctx):
        channel, radios, config = make_phy_stack(ctx, line_positions(2))
        with pytest.raises(ValueError):
            Transceiver(ctx, 0, channel, config)

    def test_out_of_range_node_id_rejected(self, ctx):
        channel, radios, config = make_phy_stack(ctx, line_positions(2))
        with pytest.raises(ValueError):
            Transceiver(ctx, 99, channel, config)


class TestFading:
    def _fading_channel(self, ctx, spacing):
        model = RayleighFading()
        tx_power = 15.0
        rx_thr = range_to_threshold_dbm(model, tx_power, 250.0)
        config = RadioConfig(tx_power_dbm=tx_power, rx_threshold_dbm=rx_thr)
        channel = Channel(ctx, line_positions(2, spacing=spacing), model,
                          tx_power, reach_threshold_dbm=config.cs_threshold_dbm)
        radios = [Transceiver(ctx, i, channel, config) for i in range(2)]
        return channel, radios

    def test_fading_makes_marginal_links_lossy(self, ctx):
        channel, radios = self._fading_channel(ctx, spacing=240.0)
        got = []
        radios[1].to_mac.connect(lambda f, i: got.append(f))
        for k in range(200):
            ctx.simulator.schedule(k * 0.01, radios[0].transmit, frame(seq=k), 0.001)
        ctx.simulator.run()
        # Rayleigh at ~the edge of range: some but not all frames survive.
        assert 0 < len(got) < 200

    def test_fading_reach_includes_headroom(self, ctx):
        # Nodes slightly beyond the deterministic reach can still be reached
        # through a constructive fade, so they must be in the reach list.
        channel, radios = self._fading_channel(ctx, spacing=400.0)
        assert 1 in channel.reach[0]
