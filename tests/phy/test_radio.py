"""Tests for the transceiver state machine: reception, collisions, carrier
sensing, power states."""

import pytest

from repro.mac.frame import Frame
from repro.phy.radio import RadioState
from tests.conftest import line_positions, make_phy_stack


def frame(src=0, dst=None, seq=0):
    return Frame(src=src, dst=dst, seq=seq, payload=None, size_bytes=100)


@pytest.fixture
def pair(ctx):
    """Two nodes well in range of each other."""
    channel, radios, config = make_phy_stack(ctx, line_positions(2, spacing=100.0))
    return ctx, channel, radios


class TestTransmitReceive:
    def test_frame_delivered_intact(self, pair):
        ctx, channel, (tx, rx) = pair
        got = []
        rx.to_mac.connect(lambda f, info: got.append((f, info)))
        tx.transmit(frame(), duration=0.001)
        ctx.simulator.run()
        assert len(got) == 1
        f, info = got[0]
        assert f.src == 0
        assert info.power_dbm >= rx.config.rx_threshold_dbm

    def test_sender_does_not_hear_itself(self, pair):
        ctx, channel, (tx, rx) = pair
        got = []
        tx.to_mac.connect(lambda f, info: got.append(f))
        tx.transmit(frame(), duration=0.001)
        ctx.simulator.run()
        assert got == []

    def test_out_of_range_node_hears_nothing(self, ctx):
        channel, radios, _ = make_phy_stack(ctx, line_positions(2, spacing=2000.0))
        got = []
        radios[1].to_mac.connect(lambda f, info: got.append(f))
        radios[0].transmit(frame(), duration=0.001)
        ctx.simulator.run()
        assert got == []

    def test_tx_state_during_transmission(self, pair):
        ctx, channel, (tx, rx) = pair
        tx.transmit(frame(), duration=0.01)
        assert tx.state == RadioState.TX
        ctx.simulator.run()
        assert tx.state == RadioState.IDLE

    def test_cannot_transmit_while_transmitting(self, pair):
        ctx, channel, (tx, rx) = pair
        assert tx.transmit(frame(), duration=0.01)
        assert not tx.transmit(frame(seq=1), duration=0.01)

    def test_tx_done_fires(self, pair):
        ctx, channel, (tx, rx) = pair
        done = []
        tx.tx_done.connect(lambda: done.append(ctx.now))
        tx.transmit(frame(), duration=0.005)
        ctx.simulator.run()
        assert done == [pytest.approx(0.005)]

    def test_rx_power_decreases_with_distance(self, ctx):
        channel, radios, _ = make_phy_stack(ctx, line_positions(3, spacing=100.0))
        powers = {}
        radios[1].to_mac.connect(lambda f, i: powers.__setitem__(1, i.power_dbm))
        radios[2].to_mac.connect(lambda f, i: powers.__setitem__(2, i.power_dbm))
        radios[0].transmit(frame(), duration=0.001)
        ctx.simulator.run()
        assert powers[1] > powers[2]


class TestCollisions:
    def test_overlapping_frames_collide(self, ctx):
        # Nodes 0 and 2 both in range of node 1; simultaneous transmissions.
        channel, radios, _ = make_phy_stack(ctx, line_positions(3, spacing=100.0))
        got = []
        radios[1].to_mac.connect(lambda f, i: got.append(f))
        radios[0].transmit(frame(src=0), duration=0.001)
        radios[2].transmit(frame(src=2), duration=0.001)
        ctx.simulator.run()
        assert got == []

    def test_non_overlapping_frames_both_received(self, ctx):
        channel, radios, _ = make_phy_stack(ctx, line_positions(3, spacing=100.0))
        got = []
        radios[1].to_mac.connect(lambda f, i: got.append(f.src))
        radios[0].transmit(frame(src=0), duration=0.001)
        ctx.simulator.schedule(0.002, radios[2].transmit, frame(src=2), 0.001)
        ctx.simulator.run()
        assert sorted(got) == [0, 2]

    def test_half_duplex_tx_kills_reception(self, ctx):
        channel, radios, _ = make_phy_stack(ctx, line_positions(2, spacing=100.0))
        got = []
        radios[1].to_mac.connect(lambda f, i: got.append(f))
        radios[0].transmit(frame(src=0), duration=0.01)
        # Receiver starts its own transmission mid-reception.
        ctx.simulator.schedule(0.002, radios[1].transmit, frame(src=1), 0.001)
        ctx.simulator.run()
        assert got == []

    def test_capture_stronger_frame_survives(self, ctx):
        # Node 1 sits 50 m from node 0 and 200 m from node 2: with a capture
        # margin the much stronger frame from node 0 survives the overlap.
        import numpy as np
        positions = np.array([[0.0, 0.0], [50.0, 0.0], [250.0, 0.0]])
        channel, radios, _ = make_phy_stack(ctx, positions, capture_margin_db=10.0)
        got = []
        radios[1].to_mac.connect(lambda f, i: got.append(f.src))
        radios[0].transmit(frame(src=0), duration=0.001)
        radios[2].transmit(frame(src=2), duration=0.001)
        ctx.simulator.run()
        assert got == [0]


class TestCarrierSense:
    def test_busy_during_neighbor_transmission(self, pair):
        ctx, channel, (tx, rx) = pair
        transitions = []
        rx.carrier.connect(transitions.append)
        tx.transmit(frame(), duration=0.005)
        ctx.simulator.run()
        assert transitions == [True, False]

    def test_carrier_busy_predicate(self, pair):
        ctx, channel, (tx, rx) = pair
        tx.transmit(frame(), duration=0.005)
        ctx.simulator.run(until=0.001)
        assert rx.carrier_busy()
        assert tx.carrier_busy()  # own TX counts as busy
        ctx.simulator.run()
        assert not rx.carrier_busy()

    def test_cs_range_exceeds_rx_range(self, ctx):
        # At 1.2× range the signal is below the rx threshold but above the
        # carrier-sense threshold (6 dB margin ≈ 2× power ≈ 1.41× distance).
        channel, radios, config = make_phy_stack(ctx, line_positions(2, spacing=300.0))
        got, transitions = [], []
        radios[1].to_mac.connect(lambda f, i: got.append(f))
        radios[1].carrier.connect(transitions.append)
        radios[0].transmit(frame(), duration=0.001)
        ctx.simulator.run()
        assert got == []  # cannot decode
        assert transitions == [True, False]  # but senses energy


class TestPowerStates:
    def test_off_radio_receives_nothing(self, pair):
        ctx, channel, (tx, rx) = pair
        got = []
        rx.to_mac.connect(lambda f, i: got.append(f))
        rx.set_power(False)
        tx.transmit(frame(), duration=0.001)
        ctx.simulator.run()
        assert got == []

    def test_off_radio_cannot_transmit(self, pair):
        ctx, channel, (tx, rx) = pair
        tx.set_power(False)
        assert tx.transmit(frame(), duration=0.001) is False

    def test_turning_off_mid_reception_drops_frame(self, pair):
        ctx, channel, (tx, rx) = pair
        got = []
        rx.to_mac.connect(lambda f, i: got.append(f))
        tx.transmit(frame(), duration=0.01)
        ctx.simulator.schedule(0.005, rx.set_power, False)
        ctx.simulator.run()
        assert got == []

    def test_power_cycle_restores_reception(self, pair):
        ctx, channel, (tx, rx) = pair
        got = []
        rx.to_mac.connect(lambda f, i: got.append(f))
        rx.set_power(False)
        rx.set_power(True)
        tx.transmit(frame(), duration=0.001)
        ctx.simulator.run()
        assert len(got) == 1

    def test_sleep_state_flag(self, pair):
        ctx, channel, (tx, rx) = pair
        rx.set_power(False, sleep=True)
        assert rx.state == RadioState.SLEEP
        assert not rx.is_on

    def test_frame_arriving_during_off_window_is_missed_even_after_wake(self, pair):
        ctx, channel, (tx, rx) = pair
        got = []
        rx.to_mac.connect(lambda f, i: got.append(f))
        tx.transmit(frame(), duration=0.01)
        ctx.simulator.schedule(0.002, rx.set_power, False)
        ctx.simulator.schedule(0.004, rx.set_power, True)
        ctx.simulator.run()
        assert got == []
