"""3-D channel geometry: dense/sparse bit-equivalence over (N, 3)
positions, incremental moves, and the 2-D-degeneracy guarantee."""

import numpy as np
import pytest

from repro.phy.channel import Channel
from repro.phy.propagation import FreeSpace, range_to_threshold_dbm
from repro.sim.components import SimContext


def make_channel(positions, link_budget="dense"):
    model = FreeSpace()
    threshold = range_to_threshold_dbm(model, 15.0, 250.0)
    return Channel(SimContext(), np.asarray(positions, dtype=float), model,
                   15.0, threshold, link_budget=link_budget)


def positions_3d(n, seed, extent=900.0, depth=200.0):
    rng = np.random.default_rng(seed)
    return np.column_stack([rng.uniform(0, extent, n),
                            rng.uniform(0, extent, n),
                            rng.uniform(0, depth, n)])


def assert_budgets_identical(a, b):
    assert a.n_nodes == b.n_nodes
    for node in range(a.n_nodes):
        assert np.array_equal(a.reach[node], b.reach[node])
        assert np.array_equal(a._reach_power_arrays[node],
                              b._reach_power_arrays[node])


@pytest.mark.parametrize("n", [64, 512])
def test_sparse_matches_dense_3d(n):
    positions = positions_3d(n, seed=n)
    dense = make_channel(positions, "dense")
    sparse = make_channel(positions, "sparse")
    assert dense.dim == sparse.dim == 3
    assert_budgets_identical(dense, sparse)


def test_depth_zero_degenerate_matches_2d_exactly():
    """(N, 3) positions with z == 0 produce link budgets float-equal to the
    same (N, 2) positions: dz² == 0.0 adds nothing, bitwise."""
    rng = np.random.default_rng(11)
    flat = rng.uniform(0, 700.0, size=(100, 2))
    stacked = np.hstack([flat, np.zeros((100, 1))])
    for budget in ("dense", "sparse"):
        ch2 = make_channel(flat, budget)
        ch3 = make_channel(stacked, budget)
        assert_budgets_identical(ch2, ch3)


def test_move_nodes_3d_matches_rebuild():
    positions = positions_3d(128, seed=5)
    sparse = make_channel(positions, "sparse")
    moved = np.array([3, 17, 60, 127])
    positions = positions.copy()
    positions[moved] += np.array([40.0, -25.0, 30.0])
    positions[moved, 2] = np.clip(positions[moved, 2], 0.0, 200.0)
    sparse.move_nodes(moved, positions[moved])
    fresh = make_channel(positions, "dense")
    assert_budgets_identical(sparse, fresh)


def test_pair_distance_3d():
    positions = np.array([[0.0, 0.0, 0.0], [3.0, 4.0, 12.0]])
    for budget in ("dense", "sparse"):
        channel = make_channel(positions, budget)
        assert channel.pair_distance_m(0, 1) == pytest.approx(13.0)


class TestValidation:
    def test_constructor_rejects_bad_shapes(self):
        with pytest.raises(ValueError, match=r"\(N, 2\) or \(N, 3\)"):
            make_channel(np.zeros((4, 4)))
        with pytest.raises(ValueError):
            make_channel(np.zeros(8))

    def test_set_positions_reports_configured_dim(self):
        channel = make_channel(positions_3d(10, seed=1))
        with pytest.raises(ValueError, match="3-D channel"):
            channel.set_positions(np.zeros((10, 2)))

    def test_move_nodes_reports_configured_dim(self):
        channel = make_channel(np.zeros((5, 2)))
        with pytest.raises(ValueError, match="2-D channel"):
            channel.move_nodes(np.array([0, 1]), np.zeros((2, 3)))

    def test_dim_attribute(self):
        assert make_channel(np.zeros((3, 2))).dim == 2
        assert make_channel(np.zeros((3, 3))).dim == 3
