"""The sparse link budget: mode resolution, bit-identical equivalence with
the dense matrices, incremental updates, and the bounded neighbor cache."""

import math

import numpy as np
import pytest

from repro.phy.channel import (
    AUTO_SPARSE_MIN_NODES,
    NEIGHBOR_CACHE_THRESHOLDS,
    Channel,
)
from repro.phy.propagation import (
    FreeSpace,
    LogDistance,
    RayleighFading,
    TwoRayGround,
    range_to_threshold_dbm,
)
from repro.sim.components import SimContext
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.sim.trace import Tracer


@pytest.fixture
def ctx2() -> SimContext:
    """A second independent context, for dense-vs-sparse comparisons."""
    return SimContext(Simulator(), RandomStreams(42), Tracer())


@pytest.fixture
def ctx_observed():
    from repro.obs.observe import Observability
    obs = Observability()
    return SimContext(Simulator(), RandomStreams(42), Tracer(), obs=obs), obs


MODEL = FreeSpace()
TX_DBM = 15.0
THRESHOLD = range_to_threshold_dbm(MODEL, TX_DBM, 250.0)


def positions_for(n, extent, seed=7):
    return np.random.default_rng(seed).uniform(0, extent, size=(n, 2))


def make_channel(ctx, positions, link_budget, **kw):
    return Channel(ctx, positions, MODEL, TX_DBM, THRESHOLD,
                   link_budget=link_budget, **kw)


def assert_budgets_identical(dense, sparse):
    assert dense.n_nodes == sparse.n_nodes
    for i in range(dense.n_nodes):
        assert np.array_equal(dense.reach[i], sparse.reach[i]), i
        assert np.array_equal(dense._reach_power_arrays[i],
                              sparse._reach_power_arrays[i]), i
        assert dense._reach_ids[i] == sparse._reach_ids[i], i
        assert dense._reach_powers[i] == sparse._reach_powers[i], i
        assert dense._reach_delays[i] == sparse._reach_delays[i], i


class TestModeResolution:
    def test_auto_picks_dense_below_cutoff(self, ctx):
        channel = make_channel(ctx, positions_for(50, 500), "auto")
        assert channel.link_budget == "dense"

    def test_auto_picks_sparse_at_cutoff(self, ctx):
        n = AUTO_SPARSE_MIN_NODES
        channel = make_channel(ctx, positions_for(n, 8000), "auto")
        assert channel.link_budget == "sparse"

    def test_auto_with_shadowing_stays_dense(self, ctx):
        n = AUTO_SPARSE_MIN_NODES
        channel = make_channel(ctx, positions_for(n, 8000), "auto",
                               shadowing_sigma_db=4.0)
        assert channel.link_budget == "dense"

    def test_explicit_sparse_with_shadowing_raises(self, ctx):
        with pytest.raises(ValueError, match="shadowing"):
            make_channel(ctx, positions_for(10, 500), "sparse",
                         shadowing_sigma_db=4.0)

    def test_unknown_mode_raises(self, ctx):
        with pytest.raises(ValueError, match="link_budget"):
            make_channel(ctx, positions_for(10, 500), "csr")

    def test_requested_vs_resolved_mode_recorded(self, ctx):
        channel = make_channel(ctx, positions_for(10, 500), "sparse")
        assert channel.link_budget_mode == "sparse"
        assert channel.link_budget == "sparse"


class TestDenseSparseEquivalence:
    def test_static_budgets_bit_identical(self, ctx, ctx2):
        positions = positions_for(200, 1200)
        dense = make_channel(ctx, positions, "dense")
        sparse = make_channel(ctx2, positions, "sparse")
        assert_budgets_identical(dense, sparse)

    @pytest.mark.parametrize("model", [
        FreeSpace(), TwoRayGround(), LogDistance(), RayleighFading()])
    def test_equivalence_across_models(self, ctx, ctx2, model):
        positions = positions_for(120, 900)
        threshold = range_to_threshold_dbm(model, TX_DBM, 250.0)
        dense = Channel(ctx, positions, model, TX_DBM, threshold,
                        link_budget="dense")
        sparse = Channel(ctx2, positions, model, TX_DBM, threshold,
                         link_budget="sparse")
        assert_budgets_identical(dense, sparse)

    def test_set_positions_rebuild_stays_identical(self, ctx, ctx2):
        positions = positions_for(150, 1000)
        dense = make_channel(ctx, positions, "dense")
        sparse = make_channel(ctx2, positions, "sparse")
        moved = positions + np.random.default_rng(1).uniform(
            -40, 40, size=positions.shape)
        dense.set_positions(moved)
        sparse.set_positions(moved)
        assert_budgets_identical(dense, sparse)

    def test_move_nodes_partial_matches_full_rebuild(self, ctx, ctx2):
        positions = positions_for(150, 1000)
        dense = make_channel(ctx, positions, "dense")
        sparse = make_channel(ctx2, positions, "sparse")
        rng = np.random.default_rng(2)
        current = positions.copy()
        for _ in range(4):
            ids = rng.choice(150, size=20, replace=False)
            current[ids] += rng.uniform(-150, 150, size=(20, 2))
            dense.set_positions(current)
            sparse.move_nodes(ids, current[ids])
            assert_budgets_identical(dense, sparse)

    def test_move_nodes_all_nodes_matches_full_rebuild(self, ctx, ctx2):
        positions = positions_for(150, 1000)
        dense = make_channel(ctx, positions, "dense")
        sparse = make_channel(ctx2, positions, "sparse")
        moved = positions + np.random.default_rng(3).uniform(
            -5, 5, size=positions.shape)
        dense.set_positions(moved)
        sparse.move_nodes(np.arange(150), moved)
        assert_budgets_identical(dense, sparse)

    def test_neighbors_explicit_threshold_identical(self, ctx, ctx2):
        positions = positions_for(150, 1000)
        dense = make_channel(ctx, positions, "dense")
        sparse = make_channel(ctx2, positions, "sparse")
        for node in (0, 42, 149):
            for delta in (-12.0, -3.0, 0.0, 3.0, 12.0):
                threshold = THRESHOLD + delta
                assert np.array_equal(dense.neighbors(node, threshold),
                                      sparse.neighbors(node, threshold))

    def test_pair_distance_identical(self, ctx, ctx2):
        positions = positions_for(60, 600)
        dense = make_channel(ctx, positions, "dense")
        sparse = make_channel(ctx2, positions, "sparse")
        for i, j in ((0, 1), (5, 59), (30, 7)):
            assert dense.pair_distance_m(i, j) == sparse.pair_distance_m(i, j)


class TestSparseOffsets:
    def test_matrix_and_mapping_forms_agree(self, ctx, ctx2):
        positions = positions_for(100, 800)
        dense = make_channel(ctx, positions, "dense")
        sparse = make_channel(ctx2, positions, "sparse")
        matrix = np.zeros((100, 100))
        matrix[3, 4] = -200.0
        matrix[10, 11] = -3.5
        dense.set_link_offsets(matrix)
        sparse.set_link_offsets({(3, 4): -200.0, (10, 11): -3.5})
        assert_budgets_identical(dense, sparse)
        assert 4 not in sparse.reach[3]

    def test_positive_offset_extends_reach_beyond_grid_radius(self, ctx):
        positions = np.array([[0.0, 0.0], [2000.0, 0.0], [100.0, 0.0]])
        sparse = make_channel(ctx, positions, "sparse")
        assert 1 not in sparse.reach[0]
        sparse.set_link_offsets({(0, 1): 60.0})
        assert 1 in sparse.reach[0]
        # And the explicit-threshold query sees it too.
        assert 1 in sparse.neighbors(0, THRESHOLD)

    def test_clearing_offsets_restores_budget(self, ctx, ctx2):
        positions = positions_for(100, 800)
        dense = make_channel(ctx, positions, "dense")
        sparse = make_channel(ctx2, positions, "sparse")
        sparse.set_link_offsets({(3, 4): -200.0})
        sparse.set_link_offsets(None)
        assert_budgets_identical(dense, sparse)

    def test_wrong_matrix_shape_raises_both_modes(self, ctx, ctx2):
        dense = make_channel(ctx, positions_for(10, 300), "dense")
        sparse = make_channel(ctx2, positions_for(10, 300), "sparse")
        for channel in (dense, sparse):
            with pytest.raises(ValueError, match="offsets"):
                channel.set_link_offsets(np.zeros((2, 2)))

    def test_out_of_range_pair_raises(self, ctx):
        sparse = make_channel(ctx, positions_for(10, 300), "sparse")
        with pytest.raises(ValueError, match="outside"):
            sparse.set_link_offsets({(0, 99): -3.0})

    def test_dense_offsets_reuse_cached_distances(self, ctx):
        dense = make_channel(ctx, positions_for(50, 500), "dense")
        before = dense.distance_m
        dense.set_link_offsets({(0, 1): -200.0})
        assert dense.distance_m is before  # geometry pass skipped


class TestNeighborCacheBound:
    def test_lru_evicts_oldest_threshold(self, ctx):
        channel = make_channel(ctx, positions_for(30, 400), "dense")
        first = THRESHOLD - 1.0
        channel.neighbors(0, first)
        for k in range(NEIGHBOR_CACHE_THRESHOLDS):
            channel.neighbors(0, THRESHOLD + k)
        assert len(channel._neighbors_cache) == NEIGHBOR_CACHE_THRESHOLDS
        assert first not in channel._neighbors_cache

    def test_recently_used_threshold_survives(self, ctx):
        channel = make_channel(ctx, positions_for(30, 400), "dense")
        keep = THRESHOLD - 1.0
        channel.neighbors(0, keep)
        for k in range(NEIGHBOR_CACHE_THRESHOLDS - 1):
            channel.neighbors(0, THRESHOLD + k)
            channel.neighbors(0, keep)  # refresh recency
        assert keep in channel._neighbors_cache

    def test_rebuild_invalidates_cache(self, ctx):
        channel = make_channel(ctx, positions_for(30, 400), "sparse")
        channel.neighbors(0, THRESHOLD - 1.0)
        assert channel._neighbors_cache
        channel.set_positions(channel.positions + 1.0)
        assert not channel._neighbors_cache


class TestLinkBudgetBytes:
    def test_sparse_is_much_smaller_than_dense(self, ctx, ctx2):
        positions = positions_for(500, 2000)
        dense = make_channel(ctx, positions, "dense")
        sparse = make_channel(ctx2, positions, "sparse")
        assert sparse.link_budget_bytes() > 0
        assert sparse.link_budget_bytes() < dense.link_budget_bytes() / 4

    def test_gauge_reports_peak(self, ctx_observed):
        ctx, obs = ctx_observed
        channel = make_channel(ctx, positions_for(64, 600), "sparse")
        family = obs.registry.get("repro_channel_link_budget_bytes")
        samples = family.describe()["samples"]
        assert list(samples.values())[0] == pytest.approx(
            channel.link_budget_bytes())


class TestMaxRange:
    @pytest.mark.parametrize("model", [
        FreeSpace(), TwoRayGround(), LogDistance()])
    def test_inversion_brackets_the_threshold(self, model):
        threshold = range_to_threshold_dbm(model, TX_DBM, 250.0)
        radius = model.max_range_m(TX_DBM, threshold)
        assert radius >= 250.0 * (1 - 1e-9)
        assert model.rx_power_dbm(TX_DBM, radius * 1.001) < threshold

    def test_unreachable_threshold_gives_zero(self):
        assert MODEL.max_range_m(TX_DBM, 1000.0) == 0.0


class TestTransmitThroughSparse:
    def test_broadcast_delivery_identical(self, ctx, ctx2):
        from repro.mac.frame import Frame
        from repro.phy.radio import RadioConfig, Transceiver

        positions = positions_for(80, 600)
        received = {"dense": [], "sparse": []}
        for name, context in (("dense", ctx), ("sparse", ctx2)):
            channel = make_channel(context, positions, name)
            config = RadioConfig(tx_power_dbm=TX_DBM,
                                 rx_threshold_dbm=THRESHOLD)
            radios = [Transceiver(context, i, channel, config)
                      for i in range(80)]
            bucket = received[name]
            for radio in radios[1:]:
                radio.to_mac.connect(
                    lambda frame, info, b=bucket, r=radio:
                    b.append((r.node_id, info.power_dbm)))
            frame = Frame(src=0, dst=None, seq=0, payload=None,
                          size_bytes=100)
            radios[0].transmit(frame, 0.001)
            context.simulator.run()
        assert received["dense"] == received["sparse"]
        assert received["dense"]


def test_move_nodes_validates_input(ctx):
    channel = make_channel(ctx, positions_for(20, 300), "sparse")
    with pytest.raises(ValueError, match="new_positions"):
        channel.move_nodes([0, 1], np.zeros((3, 2)))
    with pytest.raises(ValueError, match="out of range"):
        channel.move_nodes([99], np.zeros((1, 2)))
    channel.move_nodes([], np.empty((0, 2)))  # no-op


def test_grid_cell_size_tracks_reach_radius(ctx):
    channel = make_channel(ctx, positions_for(50, 500), "sparse")
    assert channel._grid.cell_size_m == pytest.approx(
        channel._candidate_radius_m)
    assert channel._candidate_radius_m >= 250.0
    # Deterministic model: no fade headroom widening.
    assert math.isclose(
        channel._candidate_radius_m,
        MODEL.max_range_m(TX_DBM, THRESHOLD), rel_tol=1e-12)
