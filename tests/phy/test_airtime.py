"""Tests for channel airtime accounting."""

import pytest

from repro.mac.frame import Frame
from tests.conftest import line_positions, make_phy_stack


def test_airtime_accumulates(ctx):
    channel, radios, _ = make_phy_stack(ctx, line_positions(2, spacing=100.0))
    frame = Frame(src=0, dst=None, seq=0, payload=None, size_bytes=100)
    radios[0].transmit(frame, duration=0.004)
    ctx.simulator.run()
    radios[0].transmit(frame, duration=0.002)
    ctx.simulator.run()
    assert channel.airtime_s == pytest.approx(0.006)
    assert channel.airtime_by_kind["raw"] == pytest.approx(0.006)


def test_airtime_split_by_kind(ctx):
    channel, radios, _ = make_phy_stack(ctx, line_positions(2, spacing=100.0))
    data = Frame(src=0, dst=None, seq=0, payload=None, size_bytes=100)
    ack = Frame(src=0, dst=1, seq=0, payload=None, size_bytes=14, subtype="ack")
    radios[0].transmit(data, duration=0.004)
    ctx.simulator.run()
    radios[0].transmit(ack, duration=0.001)
    ctx.simulator.run()
    assert channel.airtime_by_kind["raw"] == pytest.approx(0.004)
    assert channel.airtime_by_kind["mac_ack"] == pytest.approx(0.001)


def test_utilization_bounded_in_real_run(ctx):
    # Offered load in a one-collision-domain network can never exceed 1
    # medium's worth of airtime per second.
    from repro.experiments.common import ScenarioConfig, attach_cbr, build_protocol_network

    scenario = ScenarioConfig(n_nodes=10, width_m=200, height_m=200,
                              range_m=250, seed=1)
    net = build_protocol_network("counter1", scenario)
    attach_cbr(net, [(0, 9), (2, 7)], interval_s=0.05, stop_s=5.0)
    net.run(until=6.0)
    assert net.channel.airtime_s <= 6.0 * 1.01
