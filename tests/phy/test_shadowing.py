"""Tests for per-link log-normal shadowing and unidirectional links."""

import numpy as np
import pytest

from repro.experiments.common import (
    ScenarioConfig,
    attach_cbr,
    build_protocol_network,
    pick_flows,
)
from repro.phy.channel import Channel
from repro.phy.propagation import FreeSpace
from repro.sim.rng import RandomStreams
from tests.conftest import line_positions, make_phy_stack


def shadowed_channel(ctx, n=20, sigma=6.0, asymmetric=False, seed_positions=3):
    rng = np.random.default_rng(seed_positions)
    positions = rng.uniform(0, 500, size=(n, 2))
    return Channel(ctx, positions, FreeSpace(), 15.0, -70.0,
                   shadowing_sigma_db=sigma, shadowing_asymmetric=asymmetric)


class TestShadowingMatrix:
    def test_symmetric_by_default(self, ctx):
        channel = shadowed_channel(ctx)
        assert np.allclose(channel.shadowing_db, channel.shadowing_db.T)

    def test_asymmetric_option(self, ctx):
        channel = shadowed_channel(ctx, asymmetric=True)
        assert not np.allclose(channel.shadowing_db, channel.shadowing_db.T)

    def test_sigma_respected(self, ctx):
        channel = shadowed_channel(ctx, n=60, sigma=8.0)
        off_diag = channel.shadowing_db[~np.eye(60, dtype=bool)]
        assert off_diag.std() == pytest.approx(8.0, rel=0.15)

    def test_zero_sigma_disables(self, ctx):
        channel = shadowed_channel(ctx, sigma=0.0)
        assert channel.shadowing_db is None

    def test_negative_sigma_rejected(self, ctx):
        with pytest.raises(ValueError):
            shadowed_channel(ctx, sigma=-1.0)

    def test_shadowing_shifts_link_budget(self, ctx):
        rng = np.random.default_rng(3)
        positions = rng.uniform(0, 500, size=(10, 2))
        plain = Channel(ctx, positions, FreeSpace(), 15.0, -70.0)
        shadowed = Channel(ctx, positions, FreeSpace(), 15.0, -70.0,
                           shadowing_sigma_db=6.0)
        assert not np.allclose(plain.rx_power_dbm, shadowed.rx_power_dbm)

    def test_shadowing_survives_position_updates(self, ctx):
        channel = shadowed_channel(ctx)
        before = channel.shadowing_db.copy()
        channel.set_positions(channel.positions + 10.0)
        assert np.array_equal(channel.shadowing_db, before)

    def test_asymmetric_creates_unidirectional_links(self, ctx):
        channel = shadowed_channel(ctx, n=40, sigma=8.0, asymmetric=True)
        threshold = -64.0
        forward = channel.rx_power_dbm >= threshold
        unidirectional = forward & ~forward.T
        np.fill_diagonal(unidirectional, False)
        assert unidirectional.any()


class TestUnidirectionalLinksClaim:
    """Section 4: 'The existence of unidirectional links may negatively
    affect the efficiency, but not the correctness of the protocol.'"""

    def run_rr(self, asymmetric, seed):
        scenario = ScenarioConfig(
            n_nodes=60, width_m=650, height_m=650, range_m=250, seed=seed,
            shadowing_sigma_db=6.0, shadowing_asymmetric=asymmetric,
        )
        net = build_protocol_network("routeless", scenario)
        flows = pick_flows(60, 3, RandomStreams(seed + 3).stream("uni"),
                           bidirectional=True)
        attach_cbr(net, flows, interval_s=1.0, stop_s=12.0)
        net.run(until=15.0)
        return net

    def test_correctness_survives_asymmetry(self):
        # Dense enough that asymmetric shadowing cannot partition the net:
        # delivery must stay high even with unidirectional links present.
        deliveries = []
        for seed in (1, 2, 3):
            net = self.run_rr(asymmetric=True, seed=seed)
            deliveries.append(net.summary().delivery_ratio)
        assert sum(deliveries) / len(deliveries) > 0.9

    def test_no_false_deliveries_or_loops(self):
        net = self.run_rr(asymmetric=True, seed=4)
        assert net.metrics.delivered <= net.metrics.generated
        for delivery in net.metrics.deliveries:
            assert len(delivery.path) == len(set(delivery.path))
