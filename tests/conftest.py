"""Shared fixtures: contexts, tiny deterministic topologies, full stacks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.common import ScenarioConfig, build_network, build_protocol_network
from repro.mac.csma import CsmaMac, MacConfig
from repro.phy.channel import Channel
from repro.phy.propagation import FreeSpace, range_to_threshold_dbm
from repro.phy.radio import RadioConfig, Transceiver
from repro.sim.components import SimContext
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.sim.trace import Tracer


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def ctx() -> SimContext:
    return SimContext(Simulator(), RandomStreams(42), Tracer())


def line_positions(n: int, spacing: float = 200.0) -> np.ndarray:
    """n nodes on a straight line, ``spacing`` meters apart."""
    return np.array([[i * spacing, 0.0] for i in range(n)], dtype=float)


def make_phy_stack(ctx: SimContext, positions: np.ndarray,
                   range_m: float = 250.0, tx_power_dbm: float = 15.0,
                   capture_margin_db: float | None = None):
    """Channel + one transceiver per node (no MAC), for PHY-level tests."""
    model = FreeSpace()
    rx_threshold = range_to_threshold_dbm(model, tx_power_dbm, range_m)
    config = RadioConfig(tx_power_dbm=tx_power_dbm,
                         rx_threshold_dbm=rx_threshold,
                         capture_margin_db=capture_margin_db)
    channel = Channel(ctx, positions, model, tx_power_dbm,
                      reach_threshold_dbm=config.cs_threshold_dbm)
    radios = [Transceiver(ctx, i, channel, config) for i in range(len(positions))]
    return channel, radios, config


def make_mac_stack(ctx: SimContext, positions: np.ndarray,
                   mac_config: MacConfig | None = None, range_m: float = 250.0):
    """Channel + transceivers + CSMA MACs, for MAC-level tests."""
    channel, radios, radio_config = make_phy_stack(ctx, positions, range_m=range_m)
    mac_config = mac_config if mac_config is not None else MacConfig()
    macs = [CsmaMac(ctx, i, radio, mac_config) for i, radio in enumerate(radios)]
    return channel, radios, macs


def line_network(protocol: str, n: int = 5, spacing: float = 200.0,
                 range_m: float = 250.0, seed: int = 1, tracer: Tracer | None = None,
                 protocol_config=None, obs=None):
    """A full stack on a line topology running the named protocol."""
    scenario = ScenarioConfig(
        n_nodes=n,
        positions=line_positions(n, spacing),
        range_m=range_m,
        seed=seed,
    )
    return build_protocol_network(protocol, scenario, tracer=tracer,
                                  protocol_config=protocol_config, obs=obs)
