"""Setup shim.

The sandboxed environment has setuptools but no `wheel` package, so PEP 660
editable installs (which build a wheel) fail.  This shim lets
``pip install -e . --no-use-pep517 --no-build-isolation`` take the legacy
``setup.py develop`` path, and plain ``pip install -e .`` is redirected to it
by falling back gracefully.  Metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
